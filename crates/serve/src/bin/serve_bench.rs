//! Load generator and smoke client for `m3d_serve`.
//!
//! ```text
//! serve_bench (--unix PATH | --tcp ADDR) [--out FILE] [--clients LIST]
//!             [--requests N] [--small] [--smoke-out] [--check-coalesce N]
//!             [--shutdown]
//! ```
//!
//! Default mode drives a saturation curve: for each client count in
//! `--clients` (comma-separated, default `1,2,4,8`) it opens that many
//! connections, fires `--requests` `run` requests per connection over
//! the small-scale flow matrix, and records requests/sec, p50/p99
//! latency, and the coalesce rate (fraction of runs that did NOT force
//! a fresh library characterization, from the server's own `stats`
//! deltas) into `--out` (default `BENCH_serve.json`).
//!
//! `--smoke-out` instead renders the flow-heavy smoke subset through
//! `table` requests and prints it to stdout in exactly the format of
//! `paper_tables --small --subset` — CI diffs the two byte-for-byte to
//! prove the server serves the same science as the batch binary.
//!
//! `--check-coalesce N` opens N connections, fires one *identical* run
//! request from each at the same instant, and fails loudly unless the
//! server characterized exactly one library for all N — the
//! cross-connection coalescing guarantee.
//!
//! `--shutdown` sends the graceful-drain op after the chosen mode.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Instant;

use m3d_bench::{paper_drivers, SMOKE_SUBSET};
use m3d_serve::client::{response_error, response_ok, ClientStream};
use monolith3d::{json_raw_field, json_str_field};

#[derive(Clone)]
enum Target {
    Unix(PathBuf),
    Tcp(String),
}

fn connect(t: &Target) -> ClientStream {
    let r = match t {
        Target::Unix(p) => ClientStream::connect_unix(p),
        Target::Tcp(a) => ClientStream::connect_tcp(a),
    };
    r.unwrap_or_else(|e| fail(&format!("cannot connect to the server: {e}")))
}

fn fail(msg: &str) -> ! {
    eprintln!("serve_bench: {msg}");
    std::process::exit(1);
}

fn usage_exit(msg: &str) -> ! {
    eprintln!(
        "{msg}\nusage: serve_bench (--unix PATH | --tcp ADDR) [--out FILE] \
         [--clients LIST] [--requests N] [--small] [--smoke-out] \
         [--check-coalesce N] [--shutdown]"
    );
    std::process::exit(2);
}

/// The small-scale flow matrix the load loop cycles through: every
/// bench × style the paper tables exercise.
const BENCHES: [&str; 5] = ["FPU", "AES", "LDPC", "DES", "M256"];
const STYLES: [&str; 2] = ["2D", "3D"];

fn run_request(id: u64, slot: usize, scale: &str) -> String {
    let bench = BENCHES[slot % BENCHES.len()];
    let style = STYLES[(slot / BENCHES.len()) % STYLES.len()];
    format!(
        "{{\"id\":{id},\"op\":\"run\",\"bench\":\"{bench}\",\"style\":\"{style}\",\"scale\":\"{scale}\"}}"
    )
}

fn stat(line: &str, name: &str) -> u64 {
    json_raw_field(line, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fail(&format!("stats response lacks {name:?}: {line}")))
}

fn fetch_stats(t: &Target) -> String {
    let mut c = connect(t);
    let id = c.fresh_id();
    c.request(&format!("{{\"id\":{id},\"op\":\"stats\"}}"))
        .unwrap_or_else(|e| fail(&format!("stats request failed: {e}")))
}

struct Level {
    clients: usize,
    requests: u64,
    wall_s: f64,
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    coalesce_rate: f64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

fn drive_level(t: &Target, clients: usize, per_client: u64, scale: &str) -> Level {
    let before = fetch_stats(t);
    let barrier = Arc::new(Barrier::new(clients));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let t = t.clone();
        let barrier = Arc::clone(&barrier);
        let scale = scale.to_string();
        handles.push(std::thread::spawn(move || {
            let mut conn = connect(&t);
            let mut lat_ms = Vec::with_capacity(per_client as usize);
            barrier.wait();
            for i in 0..per_client {
                let id = conn.fresh_id();
                // Offset per client so concurrent clients overlap on
                // the same points — the coalescing path under load.
                let line = run_request(id, c + i as usize, &scale);
                let t1 = Instant::now();
                let resp = conn
                    .request(&line)
                    .unwrap_or_else(|e| fail(&format!("run request failed: {e}")));
                lat_ms.push(t1.elapsed().as_secs_f64() * 1e3);
                if !response_ok(&resp) {
                    fail(&format!(
                        "run rejected ({}): {resp}",
                        response_error(&resp).unwrap_or_default()
                    ));
                }
            }
            lat_ms
        }));
    }
    let mut lat_ms: Vec<f64> = Vec::new();
    for h in handles {
        lat_ms.extend(
            h.join()
                .unwrap_or_else(|_| fail("a client thread panicked")),
        );
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let after = fetch_stats(t);
    lat_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let total = clients as u64 * per_client;
    let builds = stat(&after, "library_builds") - stat(&before, "library_builds");
    Level {
        clients,
        requests: total,
        wall_s,
        rps: total as f64 / wall_s.max(1e-9),
        p50_ms: percentile(&lat_ms, 0.50),
        p99_ms: percentile(&lat_ms, 0.99),
        coalesce_rate: 1.0 - builds as f64 / total.max(1) as f64,
    }
}

fn write_bench_json(path: &str, scale: &str, levels: &[Level]) {
    let mut out = String::from("{\n  \"bench\": \"serve\",\n");
    out.push_str(&format!("  \"scale\": \"{scale}\",\n  \"levels\": [\n"));
    for (i, l) in levels.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"clients\": {}, \"requests\": {}, \"wall_s\": {:.3}, \
             \"rps\": {:.1}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2}, \
             \"coalesce_rate\": {:.4}}}{}\n",
            l.clients,
            l.requests,
            l.wall_s,
            l.rps,
            l.p50_ms,
            l.p99_ms,
            l.coalesce_rate,
            if i + 1 < levels.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, &out).unwrap_or_else(|e| fail(&format!("cannot write '{path}': {e}")));
    eprintln!("[saturation curve written to {path}]");
}

/// Renders `paper_tables --small --subset` stdout through `table`
/// requests: same headers, same driver text, byte for byte.
fn smoke_out(t: &Target, scale: &str) {
    let mut conn = connect(t);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    // paper_tables prints selections in registry order, not subset
    // order; match it or the byte-identity diff fails on ordering.
    let names: Vec<&str> = paper_drivers()
        .iter()
        .map(|(n, _)| *n)
        .filter(|n| SMOKE_SUBSET.contains(n))
        .collect();
    for name in names {
        let id = conn.fresh_id();
        let resp = conn
            .request(&format!(
                "{{\"id\":{id},\"op\":\"table\",\"name\":\"{name}\",\"scale\":\"{scale}\"}}"
            ))
            .unwrap_or_else(|e| fail(&format!("table request failed: {e}")));
        if !response_ok(&resp) {
            fail(&format!("table {name} rejected: {resp}"));
        }
        let text = json_str_field(&resp, "text")
            .unwrap_or_else(|| fail(&format!("table response lacks text: {resp}")));
        writeln!(out, "==================== {name} ====================")
            .and_then(|()| writeln!(out, "{text}"))
            .unwrap_or_else(|e| fail(&format!("stdout: {e}")));
    }
}

/// N identical concurrent runs from N connections must characterize
/// exactly one library.
fn check_coalesce(t: &Target, n: usize, scale: &str) {
    let before = fetch_stats(t);
    let barrier = Arc::new(Barrier::new(n));
    let mut handles = Vec::new();
    for _ in 0..n {
        let t = t.clone();
        let barrier = Arc::clone(&barrier);
        let scale = scale.to_string();
        handles.push(std::thread::spawn(move || {
            let mut conn = connect(&t);
            let id = conn.fresh_id();
            // Slot 0 = FPU/2D for every thread: identical on purpose.
            let line = run_request(id, 0, &scale);
            barrier.wait();
            conn.request(&line)
                .unwrap_or_else(|e| fail(&format!("run request failed: {e}")))
        }));
    }
    let mut first: Option<String> = None;
    for h in handles {
        let resp = h
            .join()
            .unwrap_or_else(|_| fail("a client thread panicked"));
        if !response_ok(&resp) {
            fail(&format!("coalesce run rejected: {resp}"));
        }
        // Responses must agree bit-for-bit modulo the echoed id.
        let body = json_raw_field(&resp, "clock_ps")
            .map(ToString::to_string)
            .and_then(|c| json_raw_field(&resp, "total_power_mw").map(|p| format!("{c}/{p}")))
            .unwrap_or_else(|| fail(&format!("run response lacks numbers: {resp}")));
        match &first {
            None => first = Some(body),
            Some(f) => {
                if *f != body {
                    fail(&format!("coalesced responses disagree: {f} vs {body}"));
                }
            }
        }
    }
    let after = fetch_stats(t);
    let builds = stat(&after, "library_builds") - stat(&before, "library_builds");
    if builds != 1 {
        fail(&format!(
            "{n} identical concurrent runs characterized {builds} libraries, wanted exactly 1"
        ));
    }
    eprintln!("[coalesce check passed: {n} connections, 1 library build]");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target: Option<Target> = None;
    let mut out = "BENCH_serve.json".to_string();
    let mut clients: Vec<usize> = vec![1, 2, 4, 8];
    let mut per_client: u64 = 16;
    let mut scale = "small".to_string();
    let mut smoke = false;
    let mut coalesce: Option<usize> = None;
    let mut shutdown = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let (flag, mut inline) = match a.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (a.as_str(), None),
        };
        let mut value = |flag: &str| {
            inline
                .take()
                .or_else(|| it.next().cloned())
                .unwrap_or_else(|| usage_exit(&format!("{flag} needs a value")))
        };
        match flag {
            "--unix" => target = Some(Target::Unix(PathBuf::from(value("--unix")))),
            "--tcp" => target = Some(Target::Tcp(value("--tcp"))),
            "--out" => out = value("--out"),
            "--clients" => {
                clients = value("--clients")
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| usage_exit(&format!("bad client count '{s}'")))
                    })
                    .collect();
                if clients.is_empty() {
                    usage_exit("--clients needs at least one count");
                }
            }
            "--requests" => {
                per_client = value("--requests")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("--requests needs a number"));
            }
            "--small" => scale = "small".to_string(),
            "--smoke-out" => smoke = true,
            "--check-coalesce" => {
                coalesce = Some(
                    value("--check-coalesce")
                        .parse()
                        .unwrap_or_else(|_| usage_exit("--check-coalesce needs a number")),
                );
            }
            "--shutdown" => shutdown = true,
            other => usage_exit(&format!("unknown flag '{other}'")),
        }
    }
    let Some(target) = target else {
        usage_exit("give a server address: --unix PATH or --tcp ADDR");
    };

    // A ping proves the transport before any mode commits to work.
    {
        let mut c = connect(&target);
        let id = c.fresh_id();
        let resp = c
            .request(&format!("{{\"id\":{id},\"op\":\"ping\"}}"))
            .unwrap_or_else(|e| fail(&format!("ping failed: {e}")));
        if !response_ok(&resp) {
            fail(&format!("ping rejected: {resp}"));
        }
    }

    if let Some(n) = coalesce {
        check_coalesce(&target, n, &scale);
    } else if smoke {
        smoke_out(&target, &scale);
    } else {
        let mut levels = Vec::new();
        for &c in &clients {
            eprintln!("[level: {c} clients x {per_client} requests]");
            levels.push(drive_level(&target, c, per_client, &scale));
            let l = levels.last().unwrap_or_else(|| fail("no level recorded"));
            eprintln!(
                "[  {:.1} req/s, p50 {:.2} ms, p99 {:.2} ms, coalesce {:.1}%]",
                l.rps,
                l.p50_ms,
                l.p99_ms,
                l.coalesce_rate * 100.0
            );
        }
        write_bench_json(&out, &scale, &levels);
    }

    if shutdown {
        let mut c = connect(&target);
        let id = c.fresh_id();
        let resp = c
            .request(&format!("{{\"id\":{id},\"op\":\"shutdown\"}}"))
            .unwrap_or_else(|e| fail(&format!("shutdown failed: {e}")));
        let pending = json_raw_field(&resp, "pending").unwrap_or("?");
        eprintln!("[server draining; {pending} points in the remainder]");
    }
}
