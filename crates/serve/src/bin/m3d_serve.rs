//! The monolith3d experiment server.
//!
//! ```text
//! m3d_serve [--unix PATH] [--tcp ADDR] [--jobs N] [--queue N] [--quota N]
//!           [--block] [--remainder-dir DIR] [--cache-dir DIR] [--trace FILE]
//! ```
//!
//! At least one of `--unix` / `--tcp` is required. `--jobs N` sizes the
//! dispatcher pool (default: the host's available parallelism);
//! `--queue N` the admission queue capacity; `--quota N` the per-
//! connection cap on queued points; `--block` switches backpressure
//! from typed `queue_full` rejections to blocking submits.
//!
//! `--remainder-dir DIR` is where a graceful drain persists the
//! deduplicated plan of queued-but-unstarted points, ready for
//! `paper_tables` to pick up. `--cache-dir DIR` attaches the
//! persistent artifact store, so results survive server restarts.
//! `--trace FILE` appends every flow and admission event as JSONL —
//! the same format `trace_check` validates.
//!
//! SIGTERM and SIGINT trigger the same graceful drain as the wire
//! `shutdown` op: in-flight requests finish and respond, queued ones
//! get a typed `draining` error and land in the remainder.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use m3d_bench::cli;
use m3d_serve::{Listen, Server, ServerConfig};
use monolith3d::{ArtifactCache, Backpressure, DiskStore, JsonlRecorder, Recorder};

static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    // Only async-signal-safe work here: set the flag, let main poll it.
    SIGNALLED.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    // Hand-rolled registration against the C runtime std already links;
    // the workspace deliberately carries no libc crate.
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

fn usage_exit(msg: &str) -> ! {
    eprintln!(
        "{msg}\nusage: m3d_serve [--unix PATH] [--tcp ADDR] [--jobs N] [--queue N] \
         [--quota N] [--block] [--remainder-dir DIR] [--cache-dir DIR] [--trace FILE]"
    );
    std::process::exit(2);
}

fn parse_count(flag: &str, value: Option<&str>) -> usize {
    let v = value.unwrap_or_else(|| usage_exit(&format!("{flag} needs a number")));
    match v.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => usage_exit(&format!("{flag} needs a positive number, got '{v}'")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServerConfig {
        dispatchers: std::thread::available_parallelism().map_or(2, |n| n.get()),
        ..ServerConfig::default()
    };
    let mut cache_dir: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let (flag, mut inline) = match a.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (a.as_str(), None),
        };
        let mut value = |flag: &str| {
            inline
                .take()
                .or_else(|| it.next().cloned())
                .unwrap_or_else(|| usage_exit(&format!("{flag} needs a value")))
        };
        match flag {
            "--unix" => cfg
                .listen
                .push(Listen::Unix(PathBuf::from(value("--unix")))),
            "--tcp" => cfg.listen.push(Listen::Tcp(value("--tcp"))),
            "--jobs" => {
                cfg.dispatchers = cli::parse_jobs(Some(&value("--jobs")))
                    .unwrap_or_else(|e| usage_exit(&e.to_string()));
            }
            "--queue" => cfg.queue_capacity = parse_count("--queue", Some(&value("--queue"))),
            "--quota" => {
                cfg.quota = Some(parse_count("--quota", Some(&value("--quota"))) as u32);
            }
            "--block" => cfg.backpressure = Backpressure::Block,
            "--remainder-dir" => {
                cfg.remainder_dir = Some(PathBuf::from(value("--remainder-dir")));
            }
            "--cache-dir" => cache_dir = Some(value("--cache-dir")),
            "--trace" => trace_path = Some(value("--trace")),
            other => usage_exit(&format!("unknown flag '{other}'")),
        }
    }
    if cfg.listen.is_empty() {
        usage_exit("nothing to listen on: give --unix PATH and/or --tcp ADDR");
    }

    // Sinks attach to the global cache before the first request, same
    // order as paper_tables: recorder first so the disk tier's events
    // land in the trace too.
    if let Some(p) = &trace_path {
        let rec = JsonlRecorder::create(Path::new(p))
            .unwrap_or_else(|e| usage_exit(&format!("cannot create trace file '{p}': {e}")));
        let rec: Arc<dyn Recorder> = Arc::new(rec);
        ArtifactCache::global().set_recorder(Arc::clone(&rec));
        cfg.recorder = Some(rec);
    }
    if let Some(d) = &cache_dir {
        ArtifactCache::global().attach_disk(DiskStore::open(Path::new(d)));
        eprintln!("[persistent artifact store at {d}]");
    }
    if let Some(d) = &cfg.remainder_dir {
        if let Err(e) = std::fs::create_dir_all(d) {
            usage_exit(&format!(
                "cannot create remainder dir '{}': {e}",
                d.display()
            ));
        }
    }

    install_signal_handlers();
    let server = match Server::start(cfg.clone()) {
        Ok(s) => s,
        Err(e) => usage_exit(&format!("cannot start server: {e}")),
    };
    for l in &cfg.listen {
        match l {
            Listen::Unix(p) => eprintln!("[listening on unix socket {}]", p.display()),
            Listen::Tcp(_) => {}
        }
    }
    for a in server.tcp_addrs() {
        eprintln!("[listening on tcp {a}]");
    }

    // Park until a signal lands or a wire shutdown drains the server.
    while !SIGNALLED.load(Ordering::SeqCst) && !server.is_draining() {
        std::thread::sleep(Duration::from_millis(100));
    }
    let pending = server.shutdown();
    if pending > 0 {
        eprintln!("[drained; {pending} unstarted points persisted to the remainder]");
    } else {
        eprintln!("[drained; no pending work]");
    }
    server.join();
}
