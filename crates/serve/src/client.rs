//! A small blocking client for the m3d-serve protocol.
//!
//! One [`ClientStream`] is one connection — one client identity on the
//! server's admission queue. The helpers here stay line-oriented on
//! purpose: `serve_bench` and the robustness tests need to send
//! malformed bytes and read raw frames, so the typed conveniences are
//! a thin layer over [`ClientStream::send_line`] /
//! [`ClientStream::recv_line`] rather than a sealed RPC surface.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

use monolith3d::{json_raw_field, json_str_field};

use crate::protocol::MAX_FRAME;

enum Transport {
    Unix(BufReader<UnixStream>, UnixStream),
    Tcp(BufReader<TcpStream>, TcpStream),
}

/// A blocking JSONL connection to an m3d-serve instance.
pub struct ClientStream {
    transport: Transport,
    next_id: u64,
}

impl ClientStream {
    /// Connects over a unix domain socket.
    ///
    /// # Errors
    ///
    /// Connect/clone failures, verbatim.
    pub fn connect_unix(path: &Path) -> io::Result<ClientStream> {
        let s = UnixStream::connect(path)?;
        let w = s.try_clone()?;
        Ok(ClientStream {
            transport: Transport::Unix(BufReader::new(s), w),
            next_id: 1,
        })
    }

    /// Connects over TCP, e.g. `"127.0.0.1:7333"`.
    ///
    /// # Errors
    ///
    /// Connect/clone failures, verbatim.
    pub fn connect_tcp(addr: &str) -> io::Result<ClientStream> {
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true)?;
        let w = s.try_clone()?;
        Ok(ClientStream {
            transport: Transport::Tcp(BufReader::new(s), w),
            next_id: 1,
        })
    }

    fn writer(&mut self) -> &mut dyn Write {
        match &mut self.transport {
            Transport::Unix(_, w) => w,
            Transport::Tcp(_, w) => w,
        }
    }

    /// Writes one frame (the newline is appended here).
    ///
    /// # Errors
    ///
    /// Write failures, verbatim.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        let w = self.writer();
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
        w.flush()
    }

    /// Writes raw bytes with no framing — the robustness tests use
    /// this to send truncated and hostile payloads.
    ///
    /// # Errors
    ///
    /// Write failures, verbatim.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        let w = self.writer();
        w.write_all(bytes)?;
        w.flush()
    }

    /// Reads one response frame; `Ok(None)` on clean EOF (the server
    /// closed the connection). Caps the line at slightly over
    /// [`MAX_FRAME`] so a misbehaving server cannot wedge the client.
    ///
    /// # Errors
    ///
    /// Read failures, and `InvalidData` past the frame cap.
    pub fn recv_line(&mut self) -> io::Result<Option<String>> {
        let r: &mut dyn BufRead = match &mut self.transport {
            Transport::Unix(r, _) => r,
            Transport::Tcp(r, _) => r,
        };
        let mut buf = Vec::new();
        let n = r
            .take(MAX_FRAME as u64 + 1024)
            .read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Ok(None);
        }
        if buf.last() == Some(&b'\n') {
            buf.pop();
        } else if buf.len() > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "response frame exceeds the protocol cap",
            ));
        }
        String::from_utf8(buf)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Sends one frame and reads one frame, returning the raw response
    /// line. Correct for the control ops (`ping`/`stats`/`table`/
    /// `shutdown`) and for serial `run` traffic; pipelined runs should
    /// use [`ClientStream::send_line`] and match responses by id.
    ///
    /// # Errors
    ///
    /// I/O failures, and `UnexpectedEof` if the server hung up instead
    /// of responding.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.send_line(line)?;
        self.recv_line()?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// A fresh request id, unique per connection.
    pub fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }
}

/// `true` when a response frame reports success.
pub fn response_ok(line: &str) -> bool {
    json_raw_field(line, "ok") == Some("true")
}

/// The `"error"` class key of a failed response, if any.
pub fn response_error(line: &str) -> Option<String> {
    json_str_field(line, "error")
}
