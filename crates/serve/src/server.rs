//! The long-running experiment server (DESIGN.md §15).
//!
//! Architecture: each accepted connection is a *client* with a fresh
//! identity. A reader thread per connection parses JSONL frames;
//! control ops (`ping`, `stats`, `shutdown`) and `table` renders are
//! answered on that thread, while `run` points go through the PR 8
//! [`AdmissionQueue`] — per-client quotas, priority classes,
//! `Reject`/`Block` backpressure, every rejection mapped to a typed
//! error response — and are executed by a pool of dispatcher threads
//! over [`ParallelExecutor::run_point`] against the process-wide
//! [`ArtifactCache`]. Identical concurrent submissions from different
//! connections therefore coalesce on the cache's per-key build cell
//! and characterize exactly once; every waiter gets its own response.
//!
//! Shutdown (the `shutdown` op, or [`Server::shutdown`] from a SIGTERM
//! handler) routes through [`AdmissionQueue::drain`]: in-flight points
//! finish and respond normally, queued-but-unstarted requests are
//! answered with a typed `draining` error, and their deduplicated plan
//! remainder is persisted via [`monolith3d::govern::save_remainder`]
//! for a batch run to pick up. Per-request deadlines ride the
//! [`CancelToken`] hierarchy: each `run` gets a child of the server's
//! root token, armed at admission, so a deadline of zero rejects
//! before any queue wait and an in-flight overrun comes back as a
//! typed `deadline_exceeded`.

use std::collections::{HashMap, VecDeque};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use m3d_bench::{node_drivers, paper_drivers};
use m3d_netlist::BenchScale;
use m3d_tech::NodeId;
use monolith3d::{
    save_remainder, AdmissionError, AdmissionQueue, ArtifactCache, Backpressure, CancelCause,
    CancelToken, FlowKey, ParallelExecutor, PointOutcome, Recorder, REMAINDER_FILE,
};

use crate::protocol::{
    frame_id, parse_request, write_error, write_pong, write_run_done, write_shutdown, write_stats,
    write_table, ErrorClass, Request, MAX_FRAME,
};

/// How often blocking loops (accept, reads, dispatcher idle waits)
/// re-check the drain flag.
const POLL_SLICE: Duration = Duration::from_millis(25);

/// Where the server listens. A config may carry several (e.g. one unix
/// socket and one TCP port).
#[derive(Debug, Clone)]
pub enum Listen {
    /// A unix domain socket at this path (removed and re-bound).
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7333` (or `:0` for tests).
    Tcp(String),
}

/// Server tuning; [`ServerConfig::default`] is sized for tests.
#[derive(Clone)]
pub struct ServerConfig {
    /// Listeners to bind.
    pub listen: Vec<Listen>,
    /// Dispatcher threads executing admitted `run` points. `0` is
    /// legal (tests use it to observe queue states deterministically);
    /// admitted points then wait until shutdown drains them.
    pub dispatchers: usize,
    /// Admission queue capacity (total queued points).
    pub queue_capacity: usize,
    /// Per-client quota of queued points, if bounded.
    pub quota: Option<u32>,
    /// What a full queue does to a submitter.
    pub backpressure: Backpressure,
    /// Directory the drain remainder persists into, if any.
    pub remainder_dir: Option<PathBuf>,
    /// Event sink for admission decisions (and, via the cache's own
    /// recorder, everything else).
    pub recorder: Option<Arc<dyn Recorder>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: Vec::new(),
            dispatchers: 2,
            queue_capacity: 64,
            quota: None,
            backpressure: Backpressure::Reject,
            remainder_dir: None,
            recorder: None,
        }
    }
}

/// One queued `run` request waiting for a dispatcher: where to write
/// the response and under which token to execute.
struct Ticket {
    id: u64,
    tok: CancelToken,
    conn: ConnWriter,
}

type ConnWriter = Arc<Mutex<Box<dyn Write + Send>>>;

struct SrvState {
    draining: bool,
    /// Tickets for queued-but-unstarted points, keyed by the identity
    /// the [`AdmissionQueue`] hands back on pop. Multiple identical
    /// submissions from one client queue FIFO under one key.
    pending: HashMap<(u64, FlowKey), VecDeque<Ticket>>,
}

struct Inner {
    cache: Arc<ArtifactCache>,
    executor: ParallelExecutor,
    queue: AdmissionQueue,
    root: CancelToken,
    state: Mutex<SrvState>,
    work: Condvar,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
    next_client: AtomicU64,
    remainder_dir: Option<PathBuf>,
}

impl Inner {
    fn draining(&self) -> bool {
        self.state.lock().expect("server state lock").draining
    }
}

/// A running server; dropping it does *not* stop it — call
/// [`Server::shutdown`] (or send the `shutdown` op) then
/// [`Server::join`].
pub struct Server {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
    tcp_addrs: Vec<SocketAddr>,
}

impl Server {
    /// Binds every listener in `cfg` and starts accepting. The
    /// process-wide [`ArtifactCache::global`] backs all requests, so
    /// `run` points, `table` renders and any in-process batch work
    /// coalesce on the same build cells.
    ///
    /// # Errors
    ///
    /// Any bind failure, verbatim.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        Server::start_on(cfg, ArtifactCache::global())
    }

    /// [`Server::start`] on an explicit cache — tests isolate here.
    pub fn start_on(cfg: ServerConfig, cache: Arc<ArtifactCache>) -> io::Result<Server> {
        let mut queue = AdmissionQueue::new(cfg.queue_capacity, cfg.backpressure);
        if let Some(q) = cfg.quota {
            queue = queue.with_quota(q);
        }
        if let Some(rec) = &cfg.recorder {
            queue = queue.with_recorder(Arc::clone(rec));
        }
        let inner = Arc::new(Inner {
            executor: ParallelExecutor::new(1).with_cache(Arc::clone(&cache)),
            cache,
            queue,
            root: CancelToken::new(),
            state: Mutex::new(SrvState {
                draining: false,
                pending: HashMap::new(),
            }),
            work: Condvar::new(),
            requests: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            next_client: AtomicU64::new(1),
            remainder_dir: cfg.remainder_dir.clone(),
        });
        let mut threads = Vec::new();
        let mut tcp_addrs = Vec::new();
        for l in &cfg.listen {
            match l {
                Listen::Unix(path) => {
                    // A stale socket file from a previous run blocks
                    // the bind; replace it.
                    let _ = std::fs::remove_file(path);
                    let listener = UnixListener::bind(path)?;
                    listener.set_nonblocking(true)?;
                    let inner = Arc::clone(&inner);
                    threads.push(spawn_named("m3d-serve-accept-unix", move || {
                        accept_loop(inner, AnyListener::Unix(listener));
                    }));
                }
                Listen::Tcp(addr) => {
                    let listener = TcpListener::bind(addr)?;
                    tcp_addrs.push(listener.local_addr()?);
                    listener.set_nonblocking(true)?;
                    let inner = Arc::clone(&inner);
                    threads.push(spawn_named("m3d-serve-accept-tcp", move || {
                        accept_loop(inner, AnyListener::Tcp(listener));
                    }));
                }
            }
        }
        for i in 0..cfg.dispatchers {
            let inner = Arc::clone(&inner);
            threads.push(spawn_named(&format!("m3d-serve-dispatch-{i}"), move || {
                dispatch_loop(&inner);
            }));
        }
        Ok(Server {
            inner,
            threads,
            tcp_addrs,
        })
    }

    /// The bound TCP addresses, in `listen` order — how a test finds
    /// the ephemeral port behind `127.0.0.1:0`.
    pub fn tcp_addrs(&self) -> &[SocketAddr] {
        &self.tcp_addrs
    }

    /// Whether a drain has started (via [`Server::shutdown`], a
    /// controller, or the wire `shutdown` op).
    pub fn is_draining(&self) -> bool {
        self.inner.draining()
    }

    /// Initiates a graceful drain (idempotent): stop admitting, finish
    /// in-flight points, answer queued-but-unstarted requests with
    /// `draining`, persist their deduplicated remainder. Returns the
    /// number of remainder points.
    pub fn shutdown(&self) -> u64 {
        shutdown_inner(&self.inner)
    }

    /// Waits for the accept and dispatcher threads to exit (they do
    /// after [`Server::shutdown`]).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// A detached handle for signal handlers / other threads to
    /// trigger shutdown.
    pub fn controller(&self) -> ServerController {
        ServerController {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// A clonable shutdown handle (see [`Server::controller`]).
#[derive(Clone)]
pub struct ServerController {
    inner: Arc<Inner>,
}

impl ServerController {
    /// Same contract as [`Server::shutdown`].
    pub fn shutdown(&self) -> u64 {
        shutdown_inner(&self.inner)
    }
}

fn spawn_named(name: &str, f: impl FnOnce() + Send + 'static) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(f)
        .expect("spawning a server thread")
}

enum AnyListener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

enum AnyStream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl AnyStream {
    fn split(self) -> io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        match self {
            AnyStream::Unix(s) => {
                s.set_read_timeout(Some(POLL_SLICE))?;
                let w = s.try_clone()?;
                Ok((Box::new(s), Box::new(w)))
            }
            AnyStream::Tcp(s) => {
                s.set_read_timeout(Some(POLL_SLICE))?;
                s.set_nodelay(true)?;
                let w = s.try_clone()?;
                Ok((Box::new(s), Box::new(w)))
            }
        }
    }
}

fn accept_loop(inner: Arc<Inner>, listener: AnyListener) {
    loop {
        if inner.draining() {
            return;
        }
        let accepted = match &listener {
            AnyListener::Unix(l) => l.accept().map(|(s, _)| AnyStream::Unix(s)),
            AnyListener::Tcp(l) => l.accept().map(|(s, _)| AnyStream::Tcp(s)),
        };
        match accepted {
            Ok(stream) => {
                let client = inner.next_client.fetch_add(1, Ordering::Relaxed);
                let inner = Arc::clone(&inner);
                // Connection threads are detached: they hold their own
                // Arc<Inner> and exit when the client disconnects or
                // the server drains.
                let _ = spawn_named(&format!("m3d-serve-conn-{client}"), move || {
                    connection_loop(&inner, client, stream);
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_SLICE);
            }
            Err(_) => return,
        }
    }
}

/// Reads one newline-terminated frame, bounded by [`MAX_FRAME`].
/// `Ok(None)` on clean EOF; `Err(Oversized)` variants are signalled by
/// the special error kind below.
enum ReadFrame {
    Line(String),
    Eof,
    Oversized,
    NotUtf8,
}

fn read_frame(r: &mut impl Read, draining: &dyn Fn() -> bool, buf: &mut Vec<u8>) -> ReadFrame {
    let mut byte = [0u8; 1];
    buf.clear();
    loop {
        match r.read(&mut byte) {
            Ok(0) => {
                return if buf.is_empty() {
                    ReadFrame::Eof
                } else {
                    match String::from_utf8(std::mem::take(buf)) {
                        Ok(s) => ReadFrame::Line(s),
                        Err(_) => ReadFrame::NotUtf8,
                    }
                }
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    return match String::from_utf8(std::mem::take(buf)) {
                        Ok(s) => ReadFrame::Line(s),
                        Err(_) => ReadFrame::NotUtf8,
                    };
                }
                buf.push(byte[0]);
                if buf.len() > MAX_FRAME {
                    return ReadFrame::Oversized;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Keep partial frames across timeout slices; only bail
                // out between frames when the server is gone.
                if buf.is_empty() && draining() {
                    return ReadFrame::Eof;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ReadFrame::Eof,
        }
    }
}

/// Consumes whatever the peer already sent before a protocol-fatal
/// close: closing with unread bytes in the receive queue resets the
/// connection and can destroy the error frame in flight. Bounded so a
/// firehose peer cannot pin the thread.
fn drain_input(r: &mut impl Read) {
    let mut scratch = [0u8; 4096];
    let mut budget = 4 * MAX_FRAME;
    loop {
        match r.read(&mut scratch) {
            Ok(0) => return,
            Ok(n) => {
                budget = budget.saturating_sub(n);
                if budget == 0 {
                    return;
                }
            }
            // WouldBlock / TimedOut: the peer went quiet; good enough.
            Err(_) => return,
        }
    }
}

fn send_line(conn: &ConnWriter, line: &str) {
    let mut w = conn.lock().expect("connection writer lock");
    // A dead peer is not the server's problem; drop the response.
    let _ = w.write_all(line.as_bytes());
    let _ = w.write_all(b"\n");
    let _ = w.flush();
}

fn send_error(conn: &ConnWriter, id: u64, class: ErrorClass, detail: &str) {
    let mut buf = String::new();
    write_error(&mut buf, id, class, detail);
    send_line(conn, &buf);
}

fn connection_loop(inner: &Arc<Inner>, client: u64, stream: AnyStream) {
    let Ok((mut reader, writer)) = stream.split() else {
        return;
    };
    let conn: ConnWriter = Arc::new(Mutex::new(writer));
    let mut buf = Vec::new();
    loop {
        let draining = || inner.draining();
        let line = match read_frame(&mut reader, &draining, &mut buf) {
            ReadFrame::Eof => return,
            ReadFrame::Oversized => {
                inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                send_error(
                    &conn,
                    0,
                    ErrorClass::Oversized,
                    &format!("frame exceeds {MAX_FRAME} bytes"),
                );
                drain_input(&mut reader);
                return; // clean disconnect; other connections unaffected
            }
            ReadFrame::NotUtf8 => {
                inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                send_error(&conn, 0, ErrorClass::BadFrame, "frame is not UTF-8");
                drain_input(&mut reader);
                return;
            }
            ReadFrame::Line(l) => l,
        };
        if line.trim().is_empty() {
            continue;
        }
        let id = frame_id(&line);
        match parse_request(&line) {
            Err(e) => {
                inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                send_error(&conn, id, e.class, &e.detail);
            }
            Ok(req) => {
                inner.requests.fetch_add(1, Ordering::Relaxed);
                if !handle_request(inner, client, &conn, id, req) {
                    return;
                }
            }
        }
    }
}

/// Handles one parsed request; `false` ends the connection loop (the
/// server is shutting down).
fn handle_request(
    inner: &Arc<Inner>,
    client: u64,
    conn: &ConnWriter,
    id: u64,
    req: Request,
) -> bool {
    match req {
        Request::Ping => {
            let mut buf = String::new();
            write_pong(&mut buf, id);
            send_line(conn, &buf);
            true
        }
        Request::Stats => {
            let mut buf = String::new();
            write_stats(
                &mut buf,
                id,
                &inner.cache.stats(),
                inner.requests.load(Ordering::Relaxed),
                inner.protocol_errors.load(Ordering::Relaxed),
                inner.draining(),
            );
            send_line(conn, &buf);
            true
        }
        Request::Shutdown => {
            let pending = shutdown_inner(inner);
            let mut buf = String::new();
            write_shutdown(&mut buf, id, pending);
            send_line(conn, &buf);
            false
        }
        Request::Table { name, node, scale } => {
            if inner.draining() {
                send_error(conn, id, ErrorClass::Draining, "server is draining");
                return true;
            }
            // Rendered inline on the connection thread: the drivers
            // run their flow points against the shared cache, so
            // concurrent table requests (and any `run` traffic for the
            // same points) coalesce on its build cells.
            match render_table(&name, node, scale) {
                Some(text) => {
                    let mut buf = String::new();
                    write_table(&mut buf, id, &name, &text);
                    send_line(conn, &buf);
                }
                None => send_error(
                    conn,
                    id,
                    ErrorClass::BadRequest,
                    &format!("unknown table {name:?}"),
                ),
            }
            true
        }
        Request::Run {
            point,
            priority,
            deadline_ms,
        } => {
            let tok = inner.root.child();
            if let Some(ms) = deadline_ms {
                tok.arm_deadline_in(Duration::from_millis(ms));
            }
            // An already-expired deadline rejects before any queue
            // wait — instantly, not after a wake slice (the zero-
            // deadline pin of the cancellation substrate).
            if let Some(cause) = tok.cause() {
                let class = match cause {
                    CancelCause::Cancelled => ErrorClass::Cancelled,
                    CancelCause::DeadlineExceeded => ErrorClass::DeadlineExceeded,
                };
                send_error(conn, id, class, "deadline expired before admission");
                return true;
            }
            let key = (client, FlowKey::of(point.bench, point.style, &point.config));
            // Ticket first, then submit: a dispatcher may pop the
            // point the instant submit releases the queue lock.
            {
                let mut st = inner.state.lock().expect("server state lock");
                st.pending.entry(key).or_default().push_back(Ticket {
                    id,
                    tok,
                    conn: Arc::clone(conn),
                });
            }
            match inner.queue.submit(client, priority, point) {
                Ok(()) => {
                    // Notify under the state lock: a dispatcher between
                    // its pop-check and its condvar wait holds it, so
                    // the wakeup cannot fall into that window and cost
                    // a full poll slice of latency.
                    let st = inner.state.lock().expect("server state lock");
                    inner.work.notify_all();
                    drop(st);
                    true
                }
                Err(e) => {
                    // Roll the ticket back; it never entered the queue.
                    let mut st = inner.state.lock().expect("server state lock");
                    if let Some(q) = st.pending.get_mut(&key) {
                        q.pop_back();
                        if q.is_empty() {
                            st.pending.remove(&key);
                        }
                    }
                    drop(st);
                    let class = match e {
                        AdmissionError::QueueFull { .. } => ErrorClass::QueueFull,
                        AdmissionError::QuotaExhausted { .. } => ErrorClass::QuotaExhausted,
                        AdmissionError::Draining => ErrorClass::Draining,
                    };
                    send_error(conn, id, class, &e.to_string());
                    true
                }
            }
        }
    }
}

fn render_table(name: &str, node: Option<NodeId>, scale: BenchScale) -> Option<String> {
    match node {
        None => paper_drivers()
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, driver)| driver(scale)),
        Some(nid) => node_drivers()
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, driver)| driver(nid, scale)),
    }
}

fn dispatch_loop(inner: &Arc<Inner>) {
    loop {
        // Pop under the state lock so a ticket inserted before submit
        // is always visible by the time its point pops.
        let popped = {
            let mut st = inner.state.lock().expect("server state lock");
            loop {
                if let Some(x) = inner.queue.pop() {
                    break Some(x);
                }
                if st.draining {
                    break None;
                }
                let (g, _) = inner
                    .work
                    .wait_timeout(st, POLL_SLICE)
                    .expect("server state lock");
                st = g;
            }
        };
        let Some((client, point)) = popped else {
            return;
        };
        let key = (client, FlowKey::of(point.bench, point.style, &point.config));
        let ticket = {
            let mut st = inner.state.lock().expect("server state lock");
            let t = st.pending.get_mut(&key).and_then(VecDeque::pop_front);
            if st.pending.get(&key).is_some_and(VecDeque::is_empty) {
                st.pending.remove(&key);
            }
            t
        };
        let Some(ticket) = ticket else {
            // Unreachable by construction (tickets precede submits);
            // drop the orphan point rather than wedge the dispatcher.
            debug_assert!(false, "popped a point with no ticket");
            continue;
        };
        let outcome = inner.executor.run_point(&point, &ticket.tok);
        let mut buf = String::new();
        match outcome {
            PointOutcome::Done(result) => write_run_done(&mut buf, ticket.id, &result),
            PointOutcome::Failed(e) => {
                write_error(&mut buf, ticket.id, ErrorClass::Failed, &e.to_string())
            }
            PointOutcome::Cancelled => write_error(
                &mut buf,
                ticket.id,
                ErrorClass::Cancelled,
                "request cancelled",
            ),
            PointOutcome::DeadlineExceeded => write_error(
                &mut buf,
                ticket.id,
                ErrorClass::DeadlineExceeded,
                "request deadline exceeded",
            ),
            PointOutcome::Drained => write_error(
                &mut buf,
                ticket.id,
                ErrorClass::Draining,
                "server drained mid-request",
            ),
        }
        send_line(&ticket.conn, &buf);
    }
}

fn shutdown_inner(inner: &Arc<Inner>) -> u64 {
    {
        let mut st = inner.state.lock().expect("server state lock");
        if st.draining {
            return 0; // idempotent; the first call did the work
        }
        st.draining = true;
    }
    // Stop admissions and take the unstarted remainder (deduplicated
    // by FlowKey, same as a batch plan).
    let remainder = inner.queue.drain();
    // Everything still ticketed is unstarted (dispatchers remove
    // tickets at pop time): answer each with a typed drain error.
    let tickets: Vec<Ticket> = {
        let mut st = inner.state.lock().expect("server state lock");
        st.pending.drain().flat_map(|(_, q)| q).collect()
    };
    for t in tickets {
        send_error(
            &t.conn,
            t.id,
            ErrorClass::Draining,
            "server draining; request persisted to the plan remainder",
        );
    }
    let pending = remainder.len() as u64;
    if pending > 0 {
        if let Some(dir) = &inner.remainder_dir {
            let path = dir.join(REMAINDER_FILE);
            if let Err(e) = save_remainder(&path, remainder.points()) {
                eprintln!("[m3d-serve: remainder persistence failed: {e}]");
            }
        }
    }
    inner.work.notify_all();
    pending
}
