//! Flow-as-a-service for the monolith3d experiment engine.
//!
//! This crate turns the batch flow pipeline into a long-running
//! server speaking a newline-delimited JSON protocol (one frame per
//! line, the same hand-rolled codec conventions as the `observe`
//! trace format — see DESIGN.md §15) over unix domain sockets and
//! TCP. Connections map to client identities in the admission queue,
//! so per-client quotas, priorities and backpressure all apply per
//! connection, and identical concurrent requests from different
//! connections coalesce on the shared artifact cache: the expensive
//! library characterization runs exactly once and every submitter
//! gets its own response.
//!
//! - [`protocol`] — frame parsing and response rendering.
//! - [`server`] — the accept/dispatch machinery and graceful drain.
//! - [`client`] — a small blocking client used by `serve_bench`,
//!   tests, and anyone scripting the server from Rust.

pub mod client;
pub mod protocol;
pub mod server;

pub use client::ClientStream;
pub use protocol::{ErrorClass, Request, WireError, MAX_FRAME};
pub use server::{Listen, Server, ServerConfig, ServerController};
