//! The m3d-serve wire protocol: JSONL frames over a byte stream
//! (DESIGN.md §15).
//!
//! One request is one line — a flat JSON object, newline-terminated —
//! and every request gets exactly one response line. The codec reuses
//! the trace recorder's JSON conventions end to end: string values are
//! escaped with [`monolith3d::escape_json_into`] and read back with
//! [`monolith3d::json_str_field`]/[`monolith3d::json_raw_field`], the
//! same helpers `validate_jsonl` trusts, so the trace format and the
//! wire format cannot drift apart and hostile strings (quotes,
//! backslashes, control bytes) round-trip instead of corrupting a
//! frame.
//!
//! Request shape (`id` is echoed verbatim in the response):
//!
//! ```text
//! {"id":1,"op":"ping"}
//! {"id":2,"op":"run","bench":"DES","style":"3D","scale":"small","priority":"high","deadline_ms":30000}
//! {"id":3,"op":"table","name":"table4","scale":"small"}
//! {"id":4,"op":"stats"}
//! {"id":5,"op":"shutdown"}
//! ```
//!
//! Responses carry `"ok":true` plus an op-specific payload, or
//! `"ok":false` with a typed `"error"` class from [`ErrorClass`] and a
//! human-readable `"detail"`. A frame longer than [`MAX_FRAME`] bytes
//! is answered with an `oversized` error and the connection is closed.

use m3d_netlist::{BenchScale, Benchmark};
use m3d_tech::{DesignStyle, NodeId, PdkRegistry};
use monolith3d::{
    escape_json_into, json_raw_field, json_str_field, CacheStats, FlowConfig, FlowResult,
    PlanPoint, Priority,
};

use std::fmt::Write as _;

/// Hard cap on one frame (request or response line), bytes. A reader
/// that hits the cap answers `oversized` and disconnects rather than
/// buffering without bound.
pub const MAX_FRAME: usize = 64 * 1024;

/// Typed failure classes of the wire protocol. The `key` is the
/// `"error"` field of an error response; clients dispatch on it, never
/// on `"detail"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// The line is not a parseable frame (not JSON, bad `id`, missing
    /// `op`, invalid escapes).
    BadFrame,
    /// The frame parsed but names an unknown op / bench / style /
    /// node / scale / priority / table.
    BadRequest,
    /// The line exceeded [`MAX_FRAME`]; the server disconnects after
    /// this response.
    Oversized,
    /// The admission queue is at capacity under `Reject` backpressure.
    QueueFull,
    /// The connection hit its per-client quota of queued points.
    QuotaExhausted,
    /// The server is draining (shutdown in progress); unstarted
    /// requests are persisted to the plan remainder.
    Draining,
    /// The request was cancelled (server shutdown raced it).
    Cancelled,
    /// The request's deadline passed before it completed.
    DeadlineExceeded,
    /// The flow itself failed; `detail` carries the typed flow error.
    Failed,
}

impl ErrorClass {
    /// Stable wire name of the class.
    pub fn key(self) -> &'static str {
        match self {
            ErrorClass::BadFrame => "bad_frame",
            ErrorClass::BadRequest => "bad_request",
            ErrorClass::Oversized => "oversized",
            ErrorClass::QueueFull => "queue_full",
            ErrorClass::QuotaExhausted => "quota_exhausted",
            ErrorClass::Draining => "draining",
            ErrorClass::Cancelled => "cancelled",
            ErrorClass::DeadlineExceeded => "deadline_exceeded",
            ErrorClass::Failed => "failed",
        }
    }
}

/// A typed protocol error: the class plus a detail string for humans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    pub class: ErrorClass,
    pub detail: String,
}

impl WireError {
    fn bad_frame(detail: impl Into<String>) -> WireError {
        WireError {
            class: ErrorClass::BadFrame,
            detail: detail.into(),
        }
    }

    fn bad_request(detail: impl Into<String>) -> WireError {
        WireError {
            class: ErrorClass::BadRequest,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.class.key(), self.detail)
    }
}

impl std::error::Error for WireError {}

/// A parsed request body.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered immediately.
    Ping,
    /// One flow point through admission → executor → cache.
    Run {
        point: PlanPoint,
        priority: Priority,
        deadline_ms: Option<u64>,
    },
    /// Render a named experiment driver (the `paper_tables` registry).
    Table {
        name: String,
        node: Option<NodeId>,
        scale: BenchScale,
    },
    /// Cache + server counters snapshot.
    Stats,
    /// Begin a graceful drain: finish in-flight points, persist the
    /// unstarted remainder, stop admitting.
    Shutdown,
}

/// Extracts the request id of a frame, `0` when absent or unparseable
/// — error responses still need an id slot to echo.
pub fn frame_id(line: &str) -> u64 {
    json_raw_field(line, "id")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn parse_bench(name: &str) -> Result<Benchmark, WireError> {
    Benchmark::ALL
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            WireError::bad_request(format!("unknown bench {name:?} (FPU/AES/LDPC/DES/M256)"))
        })
}

fn parse_style(label: &str) -> Result<DesignStyle, WireError> {
    match label.to_ascii_uppercase().as_str() {
        "2D" => Ok(DesignStyle::TwoD),
        "3D" | "TMI" => Ok(DesignStyle::Tmi),
        _ => Err(WireError::bad_request(format!(
            "unknown style {label:?} (2D/3D)"
        ))),
    }
}

fn parse_scale(line: &str) -> Result<BenchScale, WireError> {
    match json_str_field(line, "scale").as_deref() {
        None => Ok(BenchScale::Small),
        Some("small") => Ok(BenchScale::Small),
        Some("paper") => Ok(BenchScale::Paper),
        Some(other) => Err(WireError::bad_request(format!(
            "unknown scale {other:?} (small/paper)"
        ))),
    }
}

fn parse_node(line: &str) -> Result<Option<NodeId>, WireError> {
    match json_str_field(line, "node") {
        None => {
            if json_raw_field(line, "node").is_some() {
                return Err(WireError::bad_frame("field \"node\" is not a string"));
            }
            Ok(None)
        }
        Some(label) => PdkRegistry::global()
            .by_name(&label)
            .map(Some)
            .ok_or_else(|| {
                WireError::bad_request(format!(
                    "unknown node {label:?} (known: {})",
                    PdkRegistry::global().names().join(", ")
                ))
            }),
    }
}

fn parse_priority(line: &str) -> Result<Priority, WireError> {
    match json_str_field(line, "priority").as_deref() {
        None => Ok(Priority::Normal),
        Some("high") => Ok(Priority::High),
        Some("normal") => Ok(Priority::Normal),
        Some("low") => Ok(Priority::Low),
        Some(other) => Err(WireError::bad_request(format!(
            "unknown priority {other:?} (high/normal/low)"
        ))),
    }
}

fn required_str(line: &str, name: &str) -> Result<String, WireError> {
    json_str_field(line, name).ok_or_else(|| {
        if json_raw_field(line, name).is_some() {
            WireError::bad_frame(format!("field {name:?} is not a valid string"))
        } else {
            WireError::bad_frame(format!("missing field {name:?}"))
        }
    })
}

/// Parses one request line into a [`Request`].
///
/// # Errors
///
/// [`WireError`] with class `bad_frame` for lines that do not parse as
/// a frame and `bad_request` for frames naming unknown operations or
/// operands. Never panics, whatever the bytes.
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let line = line.trim();
    if !(line.starts_with('{') && line.ends_with('}')) {
        return Err(WireError::bad_frame("not a JSON object"));
    }
    let id_raw =
        json_raw_field(line, "id").ok_or_else(|| WireError::bad_frame("missing field \"id\""))?;
    if id_raw.parse::<u64>().is_err() {
        return Err(WireError::bad_frame(format!(
            "field \"id\" not a u64: {id_raw:?}"
        )));
    }
    let op = required_str(line, "op")?;
    match op.as_str() {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "run" => {
            let bench = parse_bench(&required_str(line, "bench")?)?;
            let style = parse_style(&required_str(line, "style")?)?;
            let scale = parse_scale(line)?;
            let node = parse_node(line)?.unwrap_or(NodeId::N45);
            let deadline_ms = match json_raw_field(line, "deadline_ms") {
                None => None,
                Some(raw) => Some(raw.parse::<u64>().map_err(|_| {
                    WireError::bad_frame(format!("field \"deadline_ms\" not a u64: {raw:?}"))
                })?),
            };
            Ok(Request::Run {
                point: PlanPoint {
                    bench,
                    style,
                    config: FlowConfig::new(node).scale(scale),
                },
                priority: parse_priority(line)?,
                deadline_ms,
            })
        }
        "table" => Ok(Request::Table {
            name: required_str(line, "name")?,
            node: parse_node(line)?,
            scale: parse_scale(line)?,
        }),
        other => Err(WireError::bad_request(format!("unknown op {other:?}"))),
    }
}

// ---------------------------------------------------------------------
// Response writers (no trailing newline; the transport appends it)
// ---------------------------------------------------------------------

fn kv_str(buf: &mut String, name: &str, value: &str) {
    let _ = write!(buf, ",\"{name}\":\"");
    escape_json_into(buf, value);
    buf.push('"');
}

fn open_ok(buf: &mut String, id: u64, op: &str) {
    let _ = write!(buf, "{{\"id\":{id},\"ok\":true,\"op\":\"{op}\"");
}

/// `{"id":N,"ok":false,"error":"<class>","detail":"…"}`
pub fn write_error(buf: &mut String, id: u64, class: ErrorClass, detail: &str) {
    let _ = write!(
        buf,
        "{{\"id\":{id},\"ok\":false,\"error\":\"{}\"",
        class.key()
    );
    kv_str(buf, "detail", detail);
    buf.push('}');
}

/// The `ping` response.
pub fn write_pong(buf: &mut String, id: u64) {
    open_ok(buf, id, "ping");
    buf.push('}');
}

/// The `run` success response: the point's identity plus the sign-off
/// numbers a client needs to reproduce the paper's comparisons. Floats
/// use Rust's shortest round-trip form, so two bit-identical
/// [`FlowResult`]s serialize to byte-identical payloads.
pub fn write_run_done(buf: &mut String, id: u64, r: &FlowResult) {
    open_ok(buf, id, "run");
    kv_str(buf, "bench", r.bench.name());
    kv_str(buf, "style", r.style.label());
    kv_str(buf, "node", r.node_id.label());
    let _ = write!(
        buf,
        ",\"clock_ps\":{},\"cell_count\":{},\"buffer_count\":{},\"footprint_um2\":{},\"wirelength_um\":{},\"wns_ps\":{},\"total_power_mw\":{}}}",
        r.clock_ps, r.cell_count, r.buffer_count, r.footprint_um2, r.wirelength_um, r.wns_ps,
        r.total_power_mw()
    );
}

/// The `table` success response; `text` is the driver's rendered table,
/// escaped as one JSON string.
pub fn write_table(buf: &mut String, id: u64, name: &str, text: &str) {
    open_ok(buf, id, "table");
    kv_str(buf, "name", name);
    kv_str(buf, "text", text);
    buf.push('}');
}

/// The `stats` response: the cache's 13 counters plus server-side
/// request accounting.
pub fn write_stats(
    buf: &mut String,
    id: u64,
    s: &CacheStats,
    requests: u64,
    protocol_errors: u64,
    draining: bool,
) {
    open_ok(buf, id, "stats");
    let _ = write!(
        buf,
        ",\"library_builds\":{},\"library_hits\":{},\"flow_stores\":{},\"flow_hits\":{},\"flow_misses\":{},\"disk_hits\":{},\"disk_misses\":{},\"requests\":{requests},\"protocol_errors\":{protocol_errors},\"draining\":{draining}}}",
        s.library_builds, s.library_hits, s.flow_stores, s.flow_hits, s.flow_misses, s.disk_hits,
        s.disk_misses
    );
}

/// The `shutdown` response: drain finished, `pending` unstarted points
/// persisted to the remainder.
pub fn write_shutdown(buf: &mut String, id: u64, pending: u64) {
    open_ok(buf, id, "shutdown");
    let _ = write!(buf, ",\"pending\":{pending}}}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_request_shapes() {
        assert_eq!(
            parse_request("{\"id\":1,\"op\":\"ping\"}"),
            Ok(Request::Ping)
        );
        assert_eq!(
            parse_request("{\"id\":4,\"op\":\"stats\"}"),
            Ok(Request::Stats)
        );
        assert_eq!(
            parse_request("{\"id\":5,\"op\":\"shutdown\"}"),
            Ok(Request::Shutdown)
        );
        let run = parse_request(
            "{\"id\":2,\"op\":\"run\",\"bench\":\"DES\",\"style\":\"3D\",\"scale\":\"small\",\"priority\":\"high\",\"deadline_ms\":30000}",
        )
        .expect("parses");
        match run {
            Request::Run {
                point,
                priority,
                deadline_ms,
            } => {
                assert_eq!(point.bench, Benchmark::Des);
                assert_eq!(point.style, DesignStyle::Tmi);
                assert_eq!(point.config.bench_scale, BenchScale::Small);
                assert_eq!(priority, Priority::High);
                assert_eq!(deadline_ms, Some(30_000));
            }
            other => panic!("wrong request: {other:?}"),
        }
        let table =
            parse_request("{\"id\":3,\"op\":\"table\",\"name\":\"table4\"}").expect("parses");
        assert_eq!(
            table,
            Request::Table {
                name: "table4".to_string(),
                node: None,
                scale: BenchScale::Small,
            }
        );
    }

    #[test]
    fn rejects_garbage_with_typed_classes() {
        let cases: [(&str, ErrorClass); 8] = [
            ("", ErrorClass::BadFrame),
            ("not json", ErrorClass::BadFrame),
            ("{\"op\":\"ping\"}", ErrorClass::BadFrame),
            ("{\"id\":-3,\"op\":\"ping\"}", ErrorClass::BadFrame),
            ("{\"id\":1}", ErrorClass::BadFrame),
            ("{\"id\":1,\"op\":\"reboot\"}", ErrorClass::BadRequest),
            (
                "{\"id\":1,\"op\":\"run\",\"bench\":\"Z80\",\"style\":\"2D\"}",
                ErrorClass::BadRequest,
            ),
            (
                "{\"id\":1,\"op\":\"run\",\"bench\":\"DES\",\"style\":\"4D\"}",
                ErrorClass::BadRequest,
            ),
        ];
        for (line, class) in cases {
            let err = parse_request(line).expect_err(line);
            assert_eq!(err.class, class, "line {line:?} -> {err}");
        }
    }

    #[test]
    fn hostile_strings_in_frames_parse_or_reject_cleanly() {
        // An escaped quote inside a value must not derail field
        // extraction (the shared codec handles it).
        let line = "{\"id\":9,\"op\":\"table\",\"name\":\"ta\\\"ble4\"}";
        match parse_request(line).expect("parses") {
            Request::Table { name, .. } => assert_eq!(name, "ta\"ble4"),
            other => panic!("wrong request: {other:?}"),
        }
        // An invalid escape is a bad frame, not a panic.
        let err = parse_request("{\"id\":9,\"op\":\"ta\\qble\"}").expect_err("invalid escape");
        assert_eq!(err.class, ErrorClass::BadFrame);
    }

    #[test]
    fn error_responses_escape_their_detail() {
        let mut buf = String::new();
        write_error(&mut buf, 7, ErrorClass::BadFrame, "a \"quoted\"\nreason");
        assert_eq!(frame_id(&buf), 7);
        assert_eq!(buf.lines().count(), 1, "one frame stays one line");
        assert_eq!(
            json_str_field(&buf, "detail").as_deref(),
            Some("a \"quoted\"\nreason")
        );
        assert_eq!(json_raw_field(&buf, "ok"), Some("false"));
        assert_eq!(json_str_field(&buf, "error").as_deref(), Some("bad_frame"));
    }
}
