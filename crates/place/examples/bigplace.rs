use m3d_cells::CellLibrary;
use m3d_netlist::{BenchScale, Benchmark};
use m3d_place::Placer;
use m3d_tech::{DesignStyle, TechNode};
use std::time::Instant;
fn main() {
    for bench in [Benchmark::Ldpc, Benchmark::M256] {
        let lib = CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD);
        let n = bench.generate(&lib, BenchScale::Paper);
        let t = Instant::now();
        let p = Placer::new(&lib)
            .utilization(bench.target_utilization())
            .place(&n);
        let wl = p.total_hpwl_um(&n);
        println!("{}: {} cells, footprint {:.0} um2 ({:.1} x {:.1} um), HPWL {:.3} m, avg net {:.1} um  [{:.2?}]",
            bench.name(), n.instance_count(), p.footprint_um2(),
            p.core.width() as f64/1000.0, p.core.height() as f64/1000.0,
            wl*1e-6, wl / n.net_count() as f64, t.elapsed());
    }
    println!("paper LDPC-2D: 208,954 um2 (457x456), WL 3.806 m, avg 72 um; M256-2D: 478,077 um2, WL 6.647 m");
}
