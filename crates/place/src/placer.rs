use m3d_cells::CellLibrary;
use m3d_geom::{Nm, Point, Rect};
use m3d_netlist::{NetDriver, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::legalize::{effective_width_nm, legalize_rows};
use crate::spread::spread;
use crate::Placement;

/// Placement failure.
#[derive(Debug, Clone, PartialEq)]
pub enum PlaceError {
    /// Target utilization outside `(0, 1]`.
    InvalidUtilization(f64),
    /// The netlist has no instances to place.
    EmptyNetlist,
    /// An instance's cell footprint was non-finite or non-positive, so
    /// no core area can be derived.
    BadCellArea {
        /// Offending cell name.
        cell: String,
    },
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::InvalidUtilization(u) => {
                write!(f, "utilization must be in (0, 1], got {u}")
            }
            PlaceError::EmptyNetlist => write!(f, "cannot place an empty netlist"),
            PlaceError::BadCellArea { cell } => {
                write!(f, "cell {cell} has a degenerate footprint")
            }
        }
    }
}

impl std::error::Error for PlaceError {}

/// Placement engine with tunable knobs.
///
/// See the crate docs for the algorithm outline.
#[derive(Debug, Clone)]
pub struct Placer<'l> {
    lib: &'l CellLibrary,
    utilization: f64,
    iterations: usize,
    seed: u64,
    skip_legalize: bool,
    /// Optional tier assignment (gate-level monolithic 3D): instances
    /// with different tiers overlap in x/y but occupy separate device
    /// layers, so the core shrinks by the tier count and legalization
    /// runs per tier.
    tiers: Option<(Vec<u8>, usize)>,
}

impl<'l> Placer<'l> {
    /// Creates a placer over `lib` with the defaults (80 % utilization,
    /// 120 global iterations — enough for the largest benchmark to reach
    /// within ~10 % of the paper's wirelength).
    pub fn new(lib: &'l CellLibrary) -> Self {
        Placer {
            lib,
            utilization: 0.8,
            iterations: 120,
            seed: 0xCE115,
            skip_legalize: false,
            tiers: None,
        }
    }

    /// Stacks the placement on `n_tiers` device tiers with the given
    /// per-instance tier assignment (gate-level monolithic 3D, "G-MI").
    ///
    /// # Panics
    ///
    /// Panics if `n_tiers` is 0 or an assignment exceeds it.
    pub fn tiers(mut self, assignment: Vec<u8>, n_tiers: usize) -> Self {
        assert!(n_tiers >= 1, "need at least one tier");
        assert!(
            assignment.iter().all(|&t| (t as usize) < n_tiers),
            "tier assignment out of range"
        );
        self.tiers = Some((assignment, n_tiers));
        self
    }

    /// Sets target utilization (paper S6: 0.8 default, 0.33 for LDPC,
    /// 0.68 for M256).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < u <= 1`.
    pub fn utilization(mut self, u: f64) -> Self {
        assert!(u > 0.0 && u <= 1.0, "utilization must be in (0, 1]");
        self.utilization = u;
        self
    }

    /// Sets the number of global-placement iterations.
    pub fn iterations(mut self, n: usize) -> Self {
        self.iterations = n;
        self
    }

    /// Sets the RNG seed for the initial scatter.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the full placement.
    ///
    /// # Panics
    ///
    /// Panics on an empty netlist or degenerate cell footprints; see
    /// [`Placer::try_place`] for the fallible form used by the
    /// supervised flow.
    pub fn place(&self, netlist: &Netlist) -> Placement {
        match self.try_place(netlist) {
            Ok(p) => p,
            Err(e) => panic!("placement failed: {e}"),
        }
    }

    /// Fallible form of [`Placer::place`].
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError`] when the netlist is empty, a cell footprint
    /// is degenerate, or the configured utilization is out of range.
    pub fn try_place(&self, netlist: &Netlist) -> Result<Placement, PlaceError> {
        if !(self.utilization > 0.0 && self.utilization <= 1.0) {
            return Err(PlaceError::InvalidUtilization(self.utilization));
        }
        if netlist.instance_count() == 0 {
            return Err(PlaceError::EmptyNetlist);
        }
        for i in netlist.inst_ids() {
            let c = self.lib.cell(netlist.inst(i).cell);
            let area = c.width_nm as f64 * c.height_nm as f64;
            if !area.is_finite() || area <= 0.0 {
                return Err(PlaceError::BadCellArea {
                    cell: c.name.clone(),
                });
            }
        }
        Ok(self.place_validated(netlist))
    }

    /// The placement proper; inputs validated by [`Placer::try_place`].
    fn place_validated(&self, netlist: &Netlist) -> Placement {
        let lib = self.lib;
        let n_inst = netlist.instance_count();
        // Core sizing budgets each cell's *effective* width — footprint
        // plus any MIV keep-out-zone clearance the node's design rules
        // demand — so KOZ nodes get rows the legalizer can actually pack.
        let cell_area_nm2: f64 = netlist
            .inst_ids()
            .map(|i| {
                let c = lib.cell(netlist.inst(i).cell);
                effective_width_nm(lib, c) as f64 * c.height_nm as f64
            })
            .sum();
        let row_height = lib.node().cell_height(lib.style());
        let n_tiers = self.tiers.as_ref().map(|(_, n)| *n).unwrap_or(1);
        let core_area = cell_area_nm2 / self.utilization / n_tiers as f64;
        // Near-square, rounded to whole rows.
        let mut height = core_area.sqrt() as Nm;
        height = (height / row_height).max(1) * row_height;
        let width = (core_area / height as f64).ceil() as Nm;
        let core = Rect::from_size(Point::ORIGIN, width, height);

        // Port ring: distribute primary ports around the periphery.
        let n_ports = netlist
            .net_ids()
            .filter_map(|n| match netlist.net(n).driver {
                NetDriver::Port(p) => Some(p),
                _ => None,
            })
            .max()
            .map(|p| p as usize + 1)
            .unwrap_or(0)
            .max(netlist.primary_outputs.len());
        let perimeter_slots = n_ports.max(1);
        let port_positions: Vec<Point> = (0..perimeter_slots)
            .map(|i| {
                let f = i as f64 / perimeter_slots as f64;
                let perim = 2.0 * (width + height) as f64;
                let d = (f * perim) as Nm;
                if d < width {
                    Point::new(d, 0)
                } else if d < width + height {
                    Point::new(width, d - width)
                } else if d < 2 * width + height {
                    Point::new(2 * width + height - d, height)
                } else {
                    Point::new(0, 2 * (width + height) - d)
                }
            })
            .collect();

        // Initial placement: a serpentine walk in instance-creation order
        // with a little jitter. Generators emit logically-adjacent gates
        // with adjacent ids, so this seeds the global placement with the
        // same structural locality a real flow inherits from synthesis;
        // the centroid iterations then refine it. Circuits without
        // spatial structure (LDPC's random bipartite graph) gain nothing
        // from this, exactly as in the paper.
        let mut rng = StdRng::seed_from_u64(self.seed ^ n_inst as u64);
        let cols = (n_inst as f64).sqrt().ceil().max(1.0) as usize;
        let rows_n = n_inst.div_ceil(cols);
        let mut xs: Vec<f64> = Vec::with_capacity(n_inst);
        let mut ys: Vec<f64> = Vec::with_capacity(n_inst);
        for i in 0..n_inst {
            let r = i / cols;
            let c0 = i % cols;
            let c = if r.is_multiple_of(2) {
                c0
            } else {
                cols - 1 - c0
            };
            let jitter_x: f64 = rng.gen_range(-0.3..0.3);
            let jitter_y: f64 = rng.gen_range(-0.3..0.3);
            xs.push(
                ((c as f64 + 0.5 + jitter_x) / cols as f64 * width as f64)
                    .clamp(0.0, width as f64 - 1.0),
            );
            ys.push(
                ((r as f64 + 0.5 + jitter_y) / rows_n as f64 * height as f64)
                    .clamp(0.0, height as f64 - 1.0),
            );
        }

        // Precompute per-instance net membership, skipping the clock and
        // other degenerate nets.
        let clock = netlist.clock;
        let mut inst_nets: Vec<Vec<u32>> = vec![Vec::new(); n_inst];
        let mut net_pins: Vec<Vec<u32>> = vec![Vec::new(); netlist.net_count()];
        let mut net_port: Vec<Option<u32>> = vec![None; netlist.net_count()];
        for nid in netlist.net_ids() {
            if Some(nid) == clock {
                continue;
            }
            let net = netlist.net(nid);
            if net.sinks.len() > 64 {
                continue; // huge fanout nets carry no placement force
            }
            match net.driver {
                NetDriver::Cell { inst, .. } => net_pins[nid.0 as usize].push(inst.0),
                NetDriver::Port(p) => net_port[nid.0 as usize] = Some(p),
                NetDriver::None => {}
            }
            for s in &net.sinks {
                net_pins[nid.0 as usize].push(s.inst.0);
            }
            for &i in &net_pins[nid.0 as usize] {
                inst_nets[i as usize].push(nid.0);
            }
        }
        // Deduplicate membership (a cell can appear twice on one net).
        for v in &mut inst_nets {
            v.sort_unstable();
            v.dedup();
        }

        // Gauss-Seidel toward net centroids with periodic spreading.
        let mut cx: Vec<f64> = vec![0.0; netlist.net_count()];
        let mut cy: Vec<f64> = vec![0.0; netlist.net_count()];
        for iter in 0..self.iterations {
            // Net centroids.
            for nid in 0..netlist.net_count() {
                let pins = &net_pins[nid];
                if pins.is_empty() && net_port[nid].is_none() {
                    continue;
                }
                let mut sx = 0.0;
                let mut sy = 0.0;
                let mut k = 0.0;
                for &i in pins {
                    sx += xs[i as usize];
                    sy += ys[i as usize];
                    k += 1.0;
                }
                if let Some(p) = net_port[nid] {
                    if let Some(pp) = port_positions.get(p as usize) {
                        // Ports anchor with double weight so designs stay
                        // attached to their pads.
                        sx += 2.0 * pp.x as f64;
                        sy += 2.0 * pp.y as f64;
                        k += 2.0;
                    }
                }
                if k > 0.0 {
                    cx[nid] = sx / k;
                    cy[nid] = sy / k;
                }
            }
            // Move cells toward the mean of their nets' centroids.
            for i in 0..n_inst {
                let nets = &inst_nets[i];
                if nets.is_empty() {
                    continue;
                }
                let mut sx = 0.0;
                let mut sy = 0.0;
                for &nid in nets {
                    sx += cx[nid as usize];
                    sy += cy[nid as usize];
                }
                let k = nets.len() as f64;
                // Damped update keeps early iterations from collapsing.
                let alpha = 0.8;
                xs[i] = (1.0 - alpha) * xs[i] + alpha * sx / k;
                ys[i] = (1.0 - alpha) * ys[i] + alpha * sy / k;
            }
            // Spread every few iterations and at the end.
            if iter % 4 == 3 || iter + 1 == self.iterations {
                spread(netlist, self.lib, &mut xs, &mut ys, core, self.utilization);
            }
        }

        let mut placement = Placement {
            core,
            positions: xs
                .iter()
                .zip(&ys)
                .map(|(&x, &y)| Point::new((x as Nm).clamp(0, width), (y as Nm).clamp(0, height)))
                .collect(),
            port_positions,
            row_height,
            utilization: cell_area_nm2 / core.area() as f64,
        };
        if !self.skip_legalize {
            match &self.tiers {
                None => legalize_rows(netlist, self.lib, &mut placement, None),
                Some((assignment, n)) => {
                    for tier in 0..*n {
                        legalize_rows(
                            netlist,
                            self.lib,
                            &mut placement,
                            Some((assignment.as_slice(), tier as u8)),
                        );
                    }
                }
            }
        }
        placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::{BenchScale, Benchmark};
    use m3d_tech::{DesignStyle, TechNode};

    fn ctx() -> (CellLibrary, Netlist) {
        let lib = CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD);
        let n = Benchmark::Aes.generate(&lib, BenchScale::Small);
        (lib, n)
    }

    #[test]
    fn placement_is_inside_core_and_deterministic() {
        let (lib, n) = ctx();
        let p1 = Placer::new(&lib).place(&n);
        let p2 = Placer::new(&lib).place(&n);
        assert_eq!(p1, p2, "same seed gives same placement");
        for id in n.inst_ids() {
            assert!(p1.core.contains(p1.pos(id)), "cell outside core");
        }
    }

    #[test]
    fn placement_beats_random_scatter() {
        let (lib, n) = ctx();
        let placed = Placer::new(&lib).place(&n);
        let random = Placer::new(&lib).iterations(0).place(&n);
        let w_placed = placed.total_hpwl_um(&n);
        let w_random = random.total_hpwl_um(&n);
        assert!(
            w_placed < 0.7 * w_random,
            "placed {w_placed} vs random {w_random}"
        );
    }

    #[test]
    fn utilization_controls_core_area() {
        let (lib, n) = ctx();
        let tight = Placer::new(&lib).utilization(0.9).place(&n);
        let loose = Placer::new(&lib).utilization(0.3).place(&n);
        assert!(loose.footprint_um2() > 2.0 * tight.footprint_um2());
    }

    #[test]
    fn tmi_library_shrinks_footprint_about_40_percent() {
        let lib2 = CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD);
        let lib3 = CellLibrary::build(&TechNode::n45(), DesignStyle::Tmi);
        let n2 = Benchmark::Aes.generate(&lib2, BenchScale::Small);
        let n3 = Benchmark::Aes.generate(&lib3, BenchScale::Small);
        let p2 = Placer::new(&lib2).place(&n2);
        let p3 = Placer::new(&lib3).place(&n3);
        let ratio = p3.footprint_um2() / p2.footprint_um2();
        assert!(
            (0.55..0.65).contains(&ratio),
            "footprint ratio {ratio} (expect ~0.6)"
        );
        // Wirelength shrinks roughly with the linear dimension (~0.78x).
        let wl_ratio = p3.total_hpwl_um(&n3) / p2.total_hpwl_um(&n2);
        assert!(
            (0.6..0.95).contains(&wl_ratio),
            "wirelength ratio {wl_ratio}"
        );
    }
}
