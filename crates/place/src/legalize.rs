//! Row legalization: snap cells to standard-cell rows, rebalance
//! overfull rows, and pack each row left-to-right near the cells' global
//! positions.

use m3d_cells::{Cell, CellLibrary};
use m3d_geom::{Nm, Point};
use m3d_netlist::Netlist;

use crate::Placement;

/// Width a cell occupies in a row: its footprint, plus the node's MIV
/// keep-out-zone margin on each side when the cell contains MIVs. The
/// paper's 45 nm / 7 nm nodes carry a zero margin (their MIVs live
/// inside the cell outline), so this is the plain footprint there; KOZ
/// nodes such as `fdsoi-miv` reserve the clearance during legalization
/// and core sizing.
pub(crate) fn effective_width_nm(lib: &CellLibrary, cell: &Cell) -> Nm {
    let koz = lib.node().rules.miv_koz_nm;
    if cell.miv_count > 0 && koz > 0 {
        cell.width_nm + 2 * koz
    } else {
        cell.width_nm
    }
}

/// Legalizes `placement` in place. With a `tier_filter = (assignment,
/// tier)`, only the instances on that tier are legalized (they share x/y
/// space with other tiers but occupy their own device layer).
pub(crate) fn legalize_rows(
    netlist: &Netlist,
    lib: &CellLibrary,
    placement: &mut Placement,
    tier_filter: Option<(&[u8], u8)>,
) {
    let row_h = placement.row_height;
    let width = placement.core.width();
    let n_rows = ((placement.core.height() / row_h) as usize).max(1);

    let widths: Vec<Nm> = netlist
        .inst_ids()
        .map(|i| effective_width_nm(lib, lib.cell(netlist.inst(i).cell)))
        .collect();

    // Desired row per cell (restricted to the tier when filtering).
    let mut rows: Vec<Vec<u32>> = vec![Vec::new(); n_rows];
    for (i, p) in placement.positions.iter().enumerate() {
        if let Some((assignment, tier)) = tier_filter {
            if assignment.get(i).copied().unwrap_or(0) != tier {
                continue;
            }
        }
        let r = ((p.y / row_h) as usize).min(n_rows - 1);
        rows[r].push(i as u32);
    }

    // Rebalance: push overflow (cells farthest from the row centre in x)
    // to the neighbouring row with more slack. Two sweeps (up then down).
    let row_load =
        |row: &[u32], widths: &[Nm]| -> Nm { row.iter().map(|&i| widths[i as usize]).sum() };
    for sweep in 0..12 {
        let any_overfull = (0..n_rows).any(|r| row_load(&rows[r], &widths) > width);
        if !any_overfull {
            break;
        }
        let order: Box<dyn Iterator<Item = usize>> = if sweep % 2 == 0 {
            Box::new(0..n_rows)
        } else {
            Box::new((0..n_rows).rev())
        };
        for r in order {
            while row_load(&rows[r], &widths) > width && !rows[r].is_empty() {
                // Move the widest cell to the emptier neighbour.
                let (idx, _) = rows[r]
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &i)| widths[i as usize])
                    .expect("row non-empty");
                let cell = rows[r].swap_remove(idx);
                let up = (r + 1).min(n_rows - 1);
                let down = r.saturating_sub(1);
                let target = if up != r
                    && (down == r || row_load(&rows[up], &widths) <= row_load(&rows[down], &widths))
                {
                    up
                } else if down != r {
                    down
                } else {
                    break;
                };
                rows[target].push(cell);
            }
        }
    }

    // Final fixup: any row still overfull dumps its widest cells into the
    // nearest row with slack (guaranteed to exist while overall
    // utilization < 1).
    for r in 0..n_rows {
        while row_load(&rows[r], &widths) > width && !rows[r].is_empty() {
            let (idx, _) = rows[r]
                .iter()
                .enumerate()
                .max_by_key(|(_, &i)| widths[i as usize])
                .expect("row non-empty");
            let cell = rows[r].swap_remove(idx);
            let w = widths[cell as usize];
            let target = (0..n_rows)
                .filter(|&t| t != r && row_load(&rows[t], &widths) + w <= width)
                .min_by_key(|&t| (t as i64 - r as i64).abs());
            match target {
                Some(t) => rows[t].push(cell),
                None => {
                    rows[r].push(cell);
                    break;
                }
            }
        }
    }

    // Pack each row: sort by desired x, place sequentially with a cursor
    // that starts as close to the desired position as remaining space
    // allows.
    for (r, row) in rows.iter_mut().enumerate() {
        row.sort_by_key(|&i| placement.positions[i as usize].x);
        let total: Nm = row_load(row, &widths);
        let mut cursor: Nm = 0;
        let mut remaining = total;
        for &i in row.iter() {
            let w = widths[i as usize];
            let desired = placement.positions[i as usize].x - w / 2;
            // If the row is overfull despite rebalancing, overflow past
            // the right edge rather than overlapping neighbours.
            let latest_start = (width - remaining).max(0).max(cursor);
            let x = desired.clamp(cursor, latest_start);
            placement.positions[i as usize] = Point::new(x + w / 2, r as Nm * row_h + row_h / 2);
            cursor = x + w;
            remaining -= w;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Placer;
    use m3d_cells::CellLibrary;
    use m3d_netlist::{BenchScale, Benchmark};
    use m3d_tech::{DesignStyle, TechNode};

    #[test]
    fn legalized_rows_have_no_overlaps() {
        let lib = CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD);
        let n = Benchmark::Des.generate(&lib, BenchScale::Small);
        let p = Placer::new(&lib).utilization(0.7).place(&n);
        // Group by row and check pairwise spacing.
        use std::collections::BTreeMap;
        let mut rows: BTreeMap<i64, Vec<(i64, i64)>> = BTreeMap::new();
        for id in n.inst_ids() {
            let c = lib.cell(n.inst(id).cell);
            let pos = p.pos(id);
            rows.entry(pos.y)
                .or_default()
                .push((pos.x - c.width_nm / 2, pos.x + c.width_nm / 2));
        }
        let mut overlap_nm = 0i64;
        let mut total_cells = 0usize;
        for (_, mut row) in rows {
            row.sort_unstable();
            total_cells += row.len();
            for pair in row.windows(2) {
                overlap_nm += (pair[0].1 - pair[1].0).max(0);
            }
        }
        assert!(total_cells > 0);
        assert_eq!(overlap_nm, 0, "rows contain overlapping cells");
    }

    #[test]
    fn cells_snap_to_row_centres() {
        let lib = CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD);
        let n = Benchmark::Aes.generate(&lib, BenchScale::Small);
        let p = Placer::new(&lib).place(&n);
        let row_h = p.row_height;
        for id in n.inst_ids() {
            let y = p.pos(id).y;
            assert_eq!((y - row_h / 2) % row_h, 0, "cell not on a row centre");
        }
    }
}
