//! Analytical standard-cell placement for the `monolith3d` flow.
//!
//! The placer follows the classic global-placement recipe:
//!
//! 1. **Core sizing** — total cell area over the target utilization, near
//!    1:1 aspect, row grid at the library cell height. The T-MI library's
//!    40 % shorter cells directly produce the ~40-44 % footprint
//!    reduction of the paper's Tables 4/13.
//! 2. **I/O assignment** — primary inputs/outputs pinned around the
//!    periphery.
//! 3. **Quadratic-style global placement** — Gauss-Seidel iterations that
//!    move every cell toward the weighted centroid of its nets
//!    (clique-centroid approximation of the quadratic system), with the
//!    clock net excluded from forces.
//! 4. **Density spreading** — alternating 1-D x/y redistribution over a
//!    bin grid so no bin exceeds the target utilization.
//! 5. **Row legalization** — snap to rows, pack left-to-right.
//!
//! The output [`Placement`] exposes per-instance positions and HPWL
//! queries, the wirelength basis for routing, timing and the wire-load
//! models.
//!
//! # Example
//!
//! ```
//! use m3d_cells::CellLibrary;
//! use m3d_netlist::{BenchScale, Benchmark};
//! use m3d_place::Placer;
//! use m3d_tech::{DesignStyle, TechNode};
//!
//! let lib = CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD);
//! let netlist = Benchmark::Aes.generate(&lib, BenchScale::Small);
//! let placement = Placer::new(&lib).utilization(0.8).place(&netlist);
//! assert!(placement.total_hpwl_um(&netlist) > 0.0);
//! ```

pub mod def;
mod legalize;
mod placement;
mod placer;
mod spread;

pub use placement::Placement;
pub use placer::{PlaceError, Placer};
