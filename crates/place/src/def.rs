//! DEF export of a placed design.
//!
//! Emits the DIEAREA / COMPONENTS / PINS sections of a DEF 5.8 file — the
//! placement view every commercial router consumes. Distances use DEF
//! database units (1000 per µm, i.e. nm, matching this toolkit's grid).
//!
//! # Example
//!
//! ```
//! use m3d_cells::CellLibrary;
//! use m3d_netlist::{BenchScale, Benchmark};
//! use m3d_place::{def, Placer};
//! use m3d_tech::{DesignStyle, TechNode};
//!
//! let lib = CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD);
//! let n = Benchmark::Aes.generate(&lib, BenchScale::Small);
//! let p = Placer::new(&lib).iterations(12).place(&n);
//! let text = def::to_def(&n, &p, &lib);
//! assert!(text.contains("DIEAREA"));
//! assert!(text.contains("COMPONENTS"));
//! ```

use std::fmt::Write as _;

use m3d_cells::CellLibrary;
use m3d_netlist::{NetDriver, Netlist};

use crate::Placement;

/// Serializes the placement as DEF text.
pub fn to_def(netlist: &Netlist, placement: &Placement, lib: &CellLibrary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "VERSION 5.8 ;");
    let _ = writeln!(out, "DESIGN {} ;", netlist.name);
    let _ = writeln!(out, "UNITS DISTANCE MICRONS 1000 ;");
    let core = placement.core;
    let _ = writeln!(
        out,
        "DIEAREA ( {} {} ) ( {} {} ) ;",
        core.lo().x,
        core.lo().y,
        core.hi().x,
        core.hi().y
    );

    let _ = writeln!(out, "COMPONENTS {} ;", netlist.instance_count());
    for id in netlist.inst_ids() {
        let inst = netlist.inst(id);
        let cell = lib.cell(inst.cell);
        let pos = placement.pos(id);
        // DEF places the cell origin (lower-left); positions store centres.
        let x = pos.x - cell.width_nm / 2;
        let y = pos.y - cell.height_nm / 2;
        // Alternate row orientation N/FS like a real row structure.
        let row = (y / placement.row_height).max(0);
        let orient = if row % 2 == 0 { "N" } else { "FS" };
        let _ = writeln!(
            out,
            "- {} {} + PLACED ( {} {} ) {} ;",
            netlist.inst_name(id),
            cell.name,
            x,
            y,
            orient
        );
    }
    let _ = writeln!(out, "END COMPONENTS");

    let n_pins = netlist.primary_inputs.len() + netlist.primary_outputs.len();
    let _ = writeln!(out, "PINS {n_pins} ;");
    for (&net, dir) in netlist
        .primary_inputs
        .iter()
        .map(|n| (n, "INPUT"))
        .chain(netlist.primary_outputs.iter().map(|n| (n, "OUTPUT")))
    {
        let pos = match netlist.net(net).driver {
            NetDriver::Port(p) => placement
                .port_positions
                .get(p as usize)
                .copied()
                .unwrap_or(m3d_geom::Point::ORIGIN),
            _ => placement
                .net_points(netlist, net)
                .first()
                .copied()
                .unwrap_or(m3d_geom::Point::ORIGIN),
        };
        let _ = writeln!(
            out,
            "- {} + NET {} + DIRECTION {} + PLACED ( {} {} ) N ;",
            netlist.net_name(net),
            netlist.net_name(net),
            dir,
            pos.x,
            pos.y
        );
    }
    let _ = writeln!(out, "END PINS");
    let _ = writeln!(out, "END DESIGN");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Placer;
    use m3d_netlist::{BenchScale, Benchmark};
    use m3d_tech::{DesignStyle, TechNode};

    fn def_text() -> (Netlist, String) {
        let lib = CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD);
        let n = Benchmark::Des.generate(&lib, BenchScale::Small);
        let p = Placer::new(&lib).iterations(12).place(&n);
        let t = to_def(&n, &p, &lib);
        (n, t)
    }

    #[test]
    fn component_count_matches() {
        let (n, t) = def_text();
        assert!(t.contains(&format!("COMPONENTS {} ;", n.instance_count())));
        assert_eq!(
            t.matches("+ PLACED").count(),
            n.instance_count() + n.primary_inputs.len() + n.primary_outputs.len()
        );
    }

    #[test]
    fn rows_alternate_orientation() {
        let (_, t) = def_text();
        assert!(t.contains(") N ;"));
        assert!(t.contains(") FS ;"));
    }

    #[test]
    fn header_uses_nm_database_units() {
        let (_, t) = def_text();
        assert!(t.contains("UNITS DISTANCE MICRONS 1000 ;"));
        assert!(t.contains("END DESIGN"));
    }
}
