use serde::{Deserialize, Serialize};

use m3d_geom::{nm_to_um, Nm, Point, Rect};
use m3d_netlist::{NetDriver, NetId, Netlist};

/// The result of placement: a core outline, per-instance cell positions
/// (cell centres, nm) and fixed port positions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Core area outline, nm.
    pub core: Rect,
    /// Cell-centre position per instance.
    pub positions: Vec<Point>,
    /// Fixed position per primary port (indexed by port number).
    pub port_positions: Vec<Point>,
    /// Standard-cell row height, nm.
    pub row_height: Nm,
    /// Final placement utilization (cell area / core area).
    pub utilization: f64,
}

impl Placement {
    /// Position of an instance's centre.
    pub fn pos(&self, inst: m3d_netlist::InstId) -> Point {
        self.positions[inst.0 as usize]
    }

    /// Core footprint, µm².
    pub fn footprint_um2(&self) -> f64 {
        self.core.area() as f64 * 1e-6
    }

    /// All pin locations of a net: driver (cell or port) plus sinks.
    pub fn net_points(&self, netlist: &Netlist, net: NetId) -> Vec<Point> {
        let n = netlist.net(net);
        let mut pts = Vec::with_capacity(n.sinks.len() + 1);
        match n.driver {
            NetDriver::Cell { inst, .. } => pts.push(self.pos(inst)),
            NetDriver::Port(p) => {
                if let Some(&pp) = self.port_positions.get(p as usize) {
                    pts.push(pp);
                }
            }
            NetDriver::None => {}
        }
        for s in &n.sinks {
            pts.push(self.pos(s.inst));
        }
        pts
    }

    /// Half-perimeter wirelength of one net, µm.
    pub fn net_hpwl_um(&self, netlist: &Netlist, net: NetId) -> f64 {
        let pts = self.net_points(netlist, net);
        match Rect::bounding(pts) {
            Some(bb) => nm_to_um(bb.half_perimeter()),
            None => 0.0,
        }
    }

    /// Total HPWL over all nets, µm.
    pub fn total_hpwl_um(&self, netlist: &Netlist) -> f64 {
        netlist
            .net_ids()
            .map(|n| self.net_hpwl_um(netlist, n))
            .sum()
    }

    /// Moves an instance (used when optimization inserts buffers).
    pub fn set_pos(&mut self, inst: m3d_netlist::InstId, p: Point) {
        self.positions[inst.0 as usize] = p;
    }

    /// Appends a position for a newly created instance.
    pub fn push_pos(&mut self, p: Point) {
        self.positions.push(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_matches_core() {
        let p = Placement {
            core: Rect::from_size(Point::ORIGIN, 10_000, 20_000),
            positions: vec![],
            port_positions: vec![],
            row_height: 1400,
            utilization: 0.8,
        };
        assert!((p.footprint_um2() - 200.0).abs() < 1e-9);
    }
}
