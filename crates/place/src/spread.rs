//! Density spreading: 1-D cumulative redistribution over a bin grid,
//! applied in x (per bin row) and then in y (per bin column).
//!
//! Each scan computes the cell-area demand per bin and remaps cell
//! coordinates through the monotone map `F_capacity^-1 (F_demand(x))`,
//! which equalizes density while preserving relative order — the same
//! idea as the look-ahead legalization in modern analytical placers, in
//! its simplest 1-D form.

use m3d_cells::CellLibrary;
use m3d_geom::Rect;
use m3d_netlist::Netlist;

/// Number of bins per axis for `n` cells.
fn grid_for(n: usize) -> usize {
    ((n as f64).sqrt() as usize / 2).clamp(4, 96)
}

/// Spreads `(xs, ys)` in place.
pub(crate) fn spread(
    netlist: &Netlist,
    lib: &CellLibrary,
    xs: &mut [f64],
    ys: &mut [f64],
    core: Rect,
    utilization: f64,
) {
    let n = xs.len();
    if n == 0 {
        return;
    }
    let g = grid_for(n);
    let w = core.width() as f64;
    let h = core.height() as f64;
    let areas: Vec<f64> = netlist
        .inst_ids()
        .map(|i| {
            let c = lib.cell(netlist.inst(i).cell);
            crate::legalize::effective_width_nm(lib, c) as f64 * c.height_nm as f64
        })
        .collect();
    // Allow a little headroom over the target utilization so the map
    // doesn't fight the wirelength forces too hard.
    let cap_per_bin_x = (w / g as f64) * h / g as f64 * (utilization * 1.15).min(1.0);

    // X pass: per bin-row.
    axis_pass(xs, ys, &areas, g, w, h, cap_per_bin_x);
    // Y pass: per bin-column (swap roles).
    axis_pass(ys, xs, &areas, g, h, w, cap_per_bin_x);
}

/// Redistributes `primary` coordinates within each band of `secondary`.
fn axis_pass(
    primary: &mut [f64],
    secondary: &[f64],
    areas: &[f64],
    g: usize,
    primary_extent: f64,
    secondary_extent: f64,
    bin_capacity: f64,
) {
    let band_h = secondary_extent / g as f64;
    let bin_w = primary_extent / g as f64;
    // Group cells by band.
    let mut bands: Vec<Vec<u32>> = vec![Vec::new(); g];
    for (i, &s) in secondary.iter().enumerate().take(primary.len()) {
        let b = ((s / band_h) as usize).min(g - 1);
        bands[b].push(i as u32);
    }
    for band in bands {
        if band.is_empty() {
            continue;
        }
        // Demand per bin along the primary axis.
        let mut demand = vec![0.0f64; g];
        for &i in &band {
            let b = ((primary[i as usize] / bin_w) as usize).min(g - 1);
            demand[b] += areas[i as usize];
        }
        if demand.iter().all(|&d| d <= bin_capacity) {
            continue;
        }
        // Remap through the cumulative demand/capacity profile. Cells are
        // ordered by coordinate (ties broken by index so coincident cells
        // fan out) and each takes its own slice of cumulative area.
        let mut ordered = band.clone();
        ordered.sort_by(|&a, &b| {
            primary[a as usize]
                .partial_cmp(&primary[b as usize])
                .expect("finite coordinates")
                .then(a.cmp(&b))
        });
        let total: f64 = ordered.iter().map(|&i| areas[i as usize]).sum();
        let cap_total = bin_capacity * g as f64;
        let scale = if total > cap_total {
            cap_total / total
        } else {
            1.0
        };
        let mut cum = 0.0f64;
        for &i in &ordered {
            let a = areas[i as usize];
            let d_here = (cum + 0.5 * a) * scale;
            let new_x = d_here / bin_capacity * bin_w;
            // Blend toward the density-balanced position: full strength
            // only when the cell's own bin is overfull.
            let b = ((primary[i as usize] / bin_w) as usize).min(g - 1);
            let strength = (demand[b] / bin_capacity - 1.0).clamp(0.0, 1.0);
            let x0 = primary[i as usize];
            primary[i as usize] = (x0 + strength * (new_x - x0)).clamp(0.0, primary_extent - 1.0);
            cum += a;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_cells::{CellFunction, CellLibrary};
    use m3d_geom::Point;
    use m3d_netlist::NetlistBuilder;
    use m3d_tech::{DesignStyle, TechNode};

    #[test]
    fn spreading_reduces_peak_density() {
        let lib = CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD);
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.input();
        for _ in 0..400 {
            b.gate(CellFunction::Inv, &[x]);
        }
        let n = b.finish();
        let core = Rect::from_size(Point::ORIGIN, 40_000, 40_000);
        // Everything piled into one corner.
        let mut xs = vec![100.0; 400];
        let mut ys = vec![100.0; 400];
        spread(&n, &lib, &mut xs, &mut ys, core, 0.8);
        let spread_x = xs.iter().cloned().fold(f64::MIN, f64::max)
            - xs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread_x > 5_000.0, "x spread only {spread_x} nm");
        for &v in &xs {
            assert!((0.0..40_000.0).contains(&v));
        }
    }

    #[test]
    fn already_uniform_layout_is_untouched() {
        let lib = CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD);
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.input();
        for _ in 0..16 {
            b.gate(CellFunction::Inv, &[x]);
        }
        let n = b.finish();
        let core = Rect::from_size(Point::ORIGIN, 100_000, 100_000);
        let mut xs: Vec<f64> = (0..16).map(|i| 3_000.0 + i as f64 * 6_000.0).collect();
        let mut ys: Vec<f64> = (0..16).map(|i| 3_000.0 + i as f64 * 6_000.0).collect();
        let before = xs.clone();
        spread(&n, &lib, &mut xs, &mut ys, core, 0.8);
        assert_eq!(xs, before, "uniform density should be a fixed point");
    }
}
