use m3d_geom::Nm;
use serde::{Deserialize, Serialize};

/// Which tier of a monolithic 3D stack a layer lives on.
///
/// Conventional 2D designs use only [`Tier::Top`] (there is a single tier;
/// we call it "top" so that 2D and the T-MI top tier share code paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Bottom tier: PMOS devices and the MB1 metal layer in T-MI designs.
    Bottom,
    /// Top tier: NMOS devices (T-MI) or the only tier (2D), plus all
    /// conventional metal layers.
    Top,
}

/// Functional class of a routing layer, following the paper's Table 3.
///
/// The class determines the wire cross-section (width/spacing/thickness)
/// and therefore the unit-length RC; see [`crate::WireRc`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub enum MetalClass {
    /// M1 (and MB1 in T-MI): cell-level pin access metal.
    #[default]
    M1,
    /// Thin local routing layers.
    Local,
    /// Mid-thickness intermediate layers.
    Intermediate,
    /// Thick, wide global layers.
    Global,
}

impl MetalClass {
    /// All classes from bottom of the stack to the top.
    pub const ALL: [MetalClass; 4] = [
        MetalClass::M1,
        MetalClass::Local,
        MetalClass::Intermediate,
        MetalClass::Global,
    ];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            MetalClass::M1 => "M1",
            MetalClass::Local => "local",
            MetalClass::Intermediate => "intermediate",
            MetalClass::Global => "global",
        }
    }
}

impl std::fmt::Display for MetalClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One routing layer of a metal stack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetalLayer {
    /// Name, e.g. `"MB1"`, `"M1"`, `"M7"`.
    pub name: String,
    /// Index into the owning [`crate::MetalStack`]; also the layer id used
    /// by geometry ([`m3d_geom::LayerShape::layer`]) for routed wires.
    pub index: u16,
    /// Functional class.
    pub class: MetalClass,
    /// Tier the layer is fabricated on.
    pub tier: Tier,
    /// Minimum (and drawn) wire width in nm.
    pub width: Nm,
    /// Minimum spacing in nm.
    pub spacing: Nm,
    /// Metal thickness in nm.
    pub thickness: Nm,
    /// Preferred routing direction: `true` = horizontal.
    pub horizontal: bool,
}

impl MetalLayer {
    /// Routing pitch (width + spacing) in nm.
    pub fn pitch(&self) -> Nm {
        self.width + self.spacing
    }

    /// Number of routing tracks that fit in a window of `span` nm
    /// perpendicular to the preferred direction.
    pub fn tracks_in(&self, span: Nm) -> u32 {
        (span / self.pitch()).max(0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2() -> MetalLayer {
        MetalLayer {
            name: "M2".into(),
            index: 1,
            class: MetalClass::Local,
            tier: Tier::Top,
            width: 70,
            spacing: 70,
            thickness: 140,
            horizontal: true,
        }
    }

    #[test]
    fn pitch_and_tracks() {
        let l = m2();
        assert_eq!(l.pitch(), 140);
        assert_eq!(l.tracks_in(1400), 10);
        assert_eq!(l.tracks_in(139), 0);
    }

    #[test]
    fn class_ordering_bottom_to_top() {
        assert!(MetalClass::M1 < MetalClass::Local);
        assert!(MetalClass::Local < MetalClass::Intermediate);
        assert!(MetalClass::Intermediate < MetalClass::Global);
    }
}
