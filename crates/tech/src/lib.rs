//! Technology modelling for the `monolith3d` EDA toolkit.
//!
//! This crate captures everything the DAC'13 T-MI power-benefit study calls
//! "library preparation": the process node parameters (45 nm planar bulk and
//! the ITRS-projected 7 nm multi-gate node), the 2D and monolithic-3D metal
//! layer stacks of the paper's Table 3 / Fig. 9, per-layer interconnect unit
//! RC (the `capTable` analogue of Section 3.3/5), the monolithic inter-tier
//! via (MIV) model, and the 45 nm → 7 nm scaling engine of Table 6 /
//! Section S3.
//!
//! # Unit system
//!
//! All electrical quantities in the toolkit use one coherent unit system:
//!
//! | quantity | unit | note |
//! |---|---|---|
//! | time | ps | |
//! | capacitance | fF | |
//! | resistance | kΩ | kΩ × fF = ps, so RC products are delays directly |
//! | voltage | V | |
//! | current | mA | V / kΩ |
//! | energy | fJ | fF × V² |
//! | power | mW | fJ / ps |
//! | length | nm (integer) or µm (f64) | geometry is integer nm |
//!
//! # Example
//!
//! ```
//! use m3d_tech::{TechNode, MetalStack, StackKind};
//!
//! let node = TechNode::n45();
//! let stack = MetalStack::new(&node, StackKind::Tmi);
//! // The T-MI stack of the paper: MB1, M1-M6 local, M7-M9 intermediate,
//! // M10-M11 global -> 12 routing layers.
//! assert_eq!(stack.layers().len(), 12);
//! ```

mod cell_layers;
mod layers;
mod miv;
mod node;
pub mod pdk;
mod scaling;
mod stack;
mod wire;

pub use cell_layers::{CellLayer, CellLayerProps};
pub use layers::{MetalClass, MetalLayer, Tier};
pub use miv::MivModel;
pub use node::{NodeId, PerClass, TechNode};
pub use pdk::{DesignRules, FdsoiMivPdk, LibraryRecipe, N45Pdk, N7Pdk, Pdk, PdkRegistry};
pub use scaling::{ScaleFactors, ITRS_7NM_SCALING};
pub use stack::{MetalStack, StackKind};
pub use wire::WireRc;

use serde::{Deserialize, Serialize};

/// Whether a design is implemented as a conventional planar 2D IC or as a
/// transistor-level monolithic 3D (T-MI) IC with PMOS on the bottom tier
/// and NMOS on the top tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignStyle {
    /// Conventional planar design.
    TwoD,
    /// Transistor-level monolithic 3D integration (folded cells + MIVs).
    Tmi,
}

impl DesignStyle {
    /// Short label used in reports ("2D" / "3D"), matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            DesignStyle::TwoD => "2D",
            DesignStyle::Tmi => "3D",
        }
    }

    /// The metal stack kind normally paired with this style.
    pub fn default_stack(self) -> StackKind {
        match self {
            DesignStyle::TwoD => StackKind::TwoD,
            DesignStyle::Tmi => StackKind::Tmi,
        }
    }
}

impl std::fmt::Display for DesignStyle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn style_labels_match_paper_tables() {
        assert_eq!(DesignStyle::TwoD.label(), "2D");
        assert_eq!(DesignStyle::Tmi.label(), "3D");
        assert_eq!(DesignStyle::Tmi.to_string(), "3D");
    }

    #[test]
    fn default_stacks_pair_up() {
        assert_eq!(DesignStyle::TwoD.default_stack(), StackKind::TwoD);
        assert_eq!(DesignStyle::Tmi.default_stack(), StackKind::Tmi);
    }
}
