use serde::{Deserialize, Serialize};

use crate::{MetalClass, TechNode, Tier, WireRc};

/// Mask layers used *inside* standard cells, as opposed to the routing
/// metal stack ([`crate::MetalStack`]).
///
/// Layer indices for geometry ([`m3d_geom::LayerShape::layer`]) are offset
/// by [`CellLayer::INDEX_BASE`] so they never collide with routing-stack
/// indices.
///
/// The bottom-tier variants (`PolyBottom`, `ContactBottom`, `DiffP`,
/// `MetalB1`, `Miv`) exist only in folded T-MI cells, where the PMOS
/// devices and their local interconnect move to the bottom tier
/// (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellLayer {
    /// N-type diffusion (NMOS source/drain). Top tier.
    DiffN,
    /// P-type diffusion (PMOS source/drain). Bottom tier in T-MI.
    DiffP,
    /// Top-tier polysilicon gate.
    Poly,
    /// Bottom-tier polysilicon gate (T-MI only; "PB" in the paper).
    PolyBottom,
    /// Top-tier contact (diffusion/poly to M1; "CT").
    Contact,
    /// Bottom-tier contact ("CTB").
    ContactBottom,
    /// Top-tier metal 1.
    Metal1,
    /// Bottom-tier metal 1 ("MB1", T-MI only).
    MetalB1,
    /// Monolithic inter-tier via connecting MB1 to M1.
    Miv,
}

/// Electrical properties of a cell layer under a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellLayerProps {
    /// Sheet resistance, kΩ per square (0 for via-like layers, which use
    /// per-cut resistance instead).
    pub sheet_r: f64,
    /// Per-cut resistance for via-like layers, kΩ (0 for planar layers).
    pub cut_r: f64,
    /// Area capacitance to the underlying substrate/ground plane, fF/µm².
    pub c_area: f64,
    /// Perimeter fringe capacitance, fF/µm.
    pub c_fringe: f64,
    /// Which tier the layer sits on.
    pub tier: Tier,
    /// `true` when the layer is a cut (contact/via/MIV) rather than a
    /// planar conductor.
    pub is_cut: bool,
}

impl CellLayer {
    /// First geometry index used by cell layers.
    pub const INDEX_BASE: u16 = 100;

    /// All cell layers.
    pub const ALL: [CellLayer; 9] = [
        CellLayer::DiffN,
        CellLayer::DiffP,
        CellLayer::Poly,
        CellLayer::PolyBottom,
        CellLayer::Contact,
        CellLayer::ContactBottom,
        CellLayer::Metal1,
        CellLayer::MetalB1,
        CellLayer::Miv,
    ];

    /// The geometry layer index.
    pub fn index(self) -> u16 {
        Self::INDEX_BASE
            + match self {
                CellLayer::DiffN => 0,
                CellLayer::DiffP => 1,
                CellLayer::Poly => 2,
                CellLayer::PolyBottom => 3,
                CellLayer::Contact => 4,
                CellLayer::ContactBottom => 5,
                CellLayer::Metal1 => 6,
                CellLayer::MetalB1 => 7,
                CellLayer::Miv => 8,
            }
    }

    /// Reverse lookup from a geometry layer index.
    pub fn from_index(index: u16) -> Option<CellLayer> {
        Self::ALL.into_iter().find(|l| l.index() == index)
    }

    /// Electrical properties under `node`.
    pub fn props(self, node: &TechNode) -> CellLayerProps {
        // M1-class cross-section for sheet-R derivation (width cancels in
        // sheet resistance: rho / t).
        let m1_t = (130.0 * node.dimension_scale()).max(1.0);
        let m1_sheet = WireRc::for_cross_section(node, MetalClass::M1, 1.0, m1_t).r_per_um * 1e-3;
        // Unit caps shrink only mildly with the node; fringe-dominated.
        let cs = if node.dimension_scale() < 1.0 {
            1.4
        } else {
            1.0
        };
        match self {
            CellLayer::DiffN | CellLayer::DiffP => CellLayerProps {
                sheet_r: 0.010, // silicided diffusion, ~10 Ohm/sq
                cut_r: 0.0,
                c_area: 0.0, // junction caps are part of the device model
                c_fringe: 0.0,
                tier: if self == CellLayer::DiffP {
                    Tier::Bottom
                } else {
                    Tier::Top
                },
                is_cut: false,
            },
            CellLayer::Poly | CellLayer::PolyBottom => CellLayerProps {
                sheet_r: 0.010, // silicided poly
                cut_r: 0.0,
                c_area: 0.09 * cs,
                c_fringe: 0.060 * cs,
                tier: if self == CellLayer::PolyBottom {
                    Tier::Bottom
                } else {
                    Tier::Top
                },
                is_cut: false,
            },
            CellLayer::Metal1 | CellLayer::MetalB1 => CellLayerProps {
                sheet_r: m1_sheet,
                cut_r: 0.0,
                c_area: 0.055 * cs,
                c_fringe: 0.026 * cs,
                tier: if self == CellLayer::MetalB1 {
                    Tier::Bottom
                } else {
                    Tier::Top
                },
                is_cut: false,
            },
            CellLayer::Contact | CellLayer::ContactBottom => CellLayerProps {
                sheet_r: 0.0,
                cut_r: node.contact_resistance,
                c_area: 0.0,
                c_fringe: 0.0,
                tier: if self == CellLayer::ContactBottom {
                    Tier::Bottom
                } else {
                    Tier::Top
                },
                is_cut: true,
            },
            CellLayer::Miv => CellLayerProps {
                sheet_r: 0.0,
                cut_r: node.miv.resistance,
                c_area: 0.0,
                c_fringe: 0.0,
                tier: Tier::Top,
                is_cut: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TechNode;

    #[test]
    fn indices_are_unique_and_reversible() {
        for l in CellLayer::ALL {
            assert_eq!(CellLayer::from_index(l.index()), Some(l));
            assert!(l.index() >= CellLayer::INDEX_BASE);
        }
        assert_eq!(CellLayer::from_index(0), None);
    }

    #[test]
    fn bottom_tier_layers_are_tagged() {
        let node = TechNode::n45();
        for l in [
            CellLayer::DiffP,
            CellLayer::PolyBottom,
            CellLayer::ContactBottom,
            CellLayer::MetalB1,
        ] {
            assert_eq!(l.props(&node).tier, Tier::Bottom, "{l:?}");
        }
        assert_eq!(CellLayer::Poly.props(&node).tier, Tier::Top);
    }

    #[test]
    fn cuts_have_cut_resistance_only() {
        let node = TechNode::n45();
        for l in [CellLayer::Contact, CellLayer::ContactBottom, CellLayer::Miv] {
            let p = l.props(&node);
            assert!(p.is_cut);
            assert!(p.cut_r > 0.0);
            assert_eq!(p.sheet_r, 0.0);
        }
    }

    #[test]
    fn m1_sheet_resistance_is_physical() {
        // rho_eff 3.5 uOhm.cm / 130 nm thickness ~ 0.27 Ohm/sq.
        let node = TechNode::n45();
        let p = CellLayer::Metal1.props(&node);
        assert!(
            (p.sheet_r * 1e3 - 0.27).abs() < 0.05,
            "sheet {} Ohm/sq",
            p.sheet_r * 1e3
        );
    }
}
