use m3d_geom::Nm;
use serde::{Deserialize, Serialize};

use crate::{MetalClass, MetalLayer, TechNode, Tier};

/// Which metal stack variant a design uses (paper Table 3 and Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StackKind {
    /// Conventional 2D stack: M1, M2-M3 local, M4-M6 intermediate,
    /// M7-M8 global (8 layers).
    TwoD,
    /// T-MI stack: MB1 on the bottom tier, M1, M2-M6 local (three extra
    /// local layers to absorb the ~1.7-2x higher pin density), M7-M9
    /// intermediate, M10-M11 global (12 layers).
    Tmi,
    /// The modified T-MI stack of Table 17 / Fig. 9(c): two extra local
    /// *and* two extra intermediate layers instead of three local ones:
    /// MB1, M1-M5 local, M6-M10 intermediate, M11-M12 global (13 layers).
    TmiPlusM,
}

impl StackKind {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            StackKind::TwoD => "2D",
            StackKind::Tmi => "T-MI",
            StackKind::TmiPlusM => "T-MI+M",
        }
    }
}

impl std::fmt::Display for StackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Cross-section dimensions for a metal class at a node, nm.
fn class_dims(node: &TechNode, class: MetalClass) -> (Nm, Nm, Nm) {
    // Base 45 nm dimensions of Table 3 (width, spacing, thickness),
    // shrunk geometrically for other nodes.
    let (w, s, t) = match class {
        MetalClass::M1 => (70, 65, 130),
        MetalClass::Local => (70, 70, 140),
        MetalClass::Intermediate => (140, 140, 280),
        MetalClass::Global => (400, 400, 800),
    };
    let k = node.dimension_scale();
    let sc = |v: Nm| ((v as f64 * k).round() as Nm).max(1);
    (sc(w), sc(s), sc(t))
}

/// An ordered routing metal stack: the layers from MB1/M1 up to the top
/// global layer.
///
/// ```
/// use m3d_tech::{MetalStack, StackKind, TechNode};
/// let node = TechNode::n45();
/// let s2d = MetalStack::new(&node, StackKind::TwoD);
/// assert_eq!(s2d.layers().len(), 8);
/// assert_eq!(s2d.layers()[0].name, "M1");
/// let tmi = MetalStack::new(&node, StackKind::Tmi);
/// assert_eq!(tmi.layers()[0].name, "MB1");
/// assert_eq!(tmi.layers().len(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetalStack {
    kind: StackKind,
    layers: Vec<MetalLayer>,
}

impl MetalStack {
    /// Builds the stack variant for a node.
    pub fn new(node: &TechNode, kind: StackKind) -> Self {
        // (name, class, tier) from bottom to top.
        let mut plan: Vec<(String, MetalClass, Tier)> = Vec::new();
        let push_range =
            |plan: &mut Vec<(String, MetalClass, Tier)>, lo: u32, hi: u32, class: MetalClass| {
                for i in lo..=hi {
                    plan.push((format!("M{i}"), class, Tier::Top));
                }
            };
        match kind {
            StackKind::TwoD => {
                plan.push(("M1".into(), MetalClass::M1, Tier::Top));
                push_range(&mut plan, 2, 3, MetalClass::Local);
                push_range(&mut plan, 4, 6, MetalClass::Intermediate);
                push_range(&mut plan, 7, 8, MetalClass::Global);
            }
            StackKind::Tmi => {
                plan.push(("MB1".into(), MetalClass::M1, Tier::Bottom));
                plan.push(("M1".into(), MetalClass::M1, Tier::Top));
                push_range(&mut plan, 2, 6, MetalClass::Local);
                push_range(&mut plan, 7, 9, MetalClass::Intermediate);
                push_range(&mut plan, 10, 11, MetalClass::Global);
            }
            StackKind::TmiPlusM => {
                plan.push(("MB1".into(), MetalClass::M1, Tier::Bottom));
                plan.push(("M1".into(), MetalClass::M1, Tier::Top));
                push_range(&mut plan, 2, 5, MetalClass::Local);
                push_range(&mut plan, 6, 10, MetalClass::Intermediate);
                push_range(&mut plan, 11, 12, MetalClass::Global);
            }
        }
        let layers = plan
            .into_iter()
            .enumerate()
            .map(|(i, (name, class, tier))| {
                let (width, spacing, thickness) = class_dims(node, class);
                MetalLayer {
                    name,
                    index: i as u16,
                    class,
                    tier,
                    width,
                    spacing,
                    thickness,
                    // Alternate preferred directions going up the stack.
                    horizontal: i % 2 == 1,
                }
            })
            .collect();
        MetalStack { kind, layers }
    }

    /// The stack variant.
    pub fn kind(&self) -> StackKind {
        self.kind
    }

    /// All layers, bottom to top.
    pub fn layers(&self) -> &[MetalLayer] {
        &self.layers
    }

    /// Layers of a class.
    pub fn layers_of(&self, class: MetalClass) -> impl Iterator<Item = &MetalLayer> {
        self.layers.iter().filter(move |l| l.class == class)
    }

    /// Looks a layer up by name.
    pub fn by_name(&self, name: &str) -> Option<&MetalLayer> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// Number of routing layers usable for signal routing above M1
    /// (M1/MB1 are mostly consumed by cell pins and intra-cell wiring).
    pub fn signal_layer_count(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| l.class != MetalClass::M1)
            .count()
    }

    /// Total routing track supply per µm of die edge, summed over signal
    /// layers of a class: 1000 / pitch(nm) tracks per µm per layer.
    pub fn track_supply_per_um(&self, class: MetalClass) -> f64 {
        self.layers_of(class)
            .map(|l| 1000.0 / l.pitch() as f64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TechNode;

    #[test]
    fn two_d_stack_matches_table3() {
        let s = MetalStack::new(&TechNode::n45(), StackKind::TwoD);
        assert_eq!(s.layers().len(), 8);
        assert_eq!(s.layers_of(MetalClass::Local).count(), 2);
        assert_eq!(s.layers_of(MetalClass::Intermediate).count(), 3);
        assert_eq!(s.layers_of(MetalClass::Global).count(), 2);
        let m2 = s.by_name("M2").expect("M2 exists");
        assert_eq!((m2.width, m2.spacing, m2.thickness), (70, 70, 140));
        let m8 = s.by_name("M8").expect("M8 exists");
        assert_eq!((m8.width, m8.spacing, m8.thickness), (400, 400, 800));
        let m1 = s.by_name("M1").expect("M1 exists");
        assert_eq!((m1.width, m1.spacing, m1.thickness), (70, 65, 130));
    }

    #[test]
    fn tmi_stack_adds_mb1_and_three_local_layers() {
        let s = MetalStack::new(&TechNode::n45(), StackKind::Tmi);
        assert_eq!(s.layers().len(), 12);
        assert_eq!(s.layers()[0].name, "MB1");
        assert_eq!(s.layers()[0].tier, Tier::Bottom);
        assert_eq!(s.layers_of(MetalClass::Local).count(), 5);
        assert_eq!(s.layers_of(MetalClass::Intermediate).count(), 3);
        assert_eq!(s.layers_of(MetalClass::Global).count(), 2);
        assert!(s.by_name("M10").is_some());
        assert_eq!(s.by_name("M10").map(|l| l.class), Some(MetalClass::Global));
    }

    #[test]
    fn tmi_plus_m_trades_local_for_intermediate() {
        let s = MetalStack::new(&TechNode::n45(), StackKind::TmiPlusM);
        assert_eq!(s.layers().len(), 13);
        assert_eq!(s.layers_of(MetalClass::Local).count(), 4);
        assert_eq!(s.layers_of(MetalClass::Intermediate).count(), 5);
        assert_eq!(s.by_name("M11").map(|l| l.class), Some(MetalClass::Global));
    }

    #[test]
    fn n7_dimensions_shrink_by_0_156() {
        let s = MetalStack::new(&TechNode::n7(), StackKind::TwoD);
        let m2 = s.by_name("M2").expect("M2 exists");
        // 70 * 7/45 = 10.9 -> rounds to 11.
        assert_eq!(m2.width, 11);
        let m8 = s.by_name("M8").expect("M8 exists");
        assert_eq!(m8.width, 62);
    }

    #[test]
    fn track_supply_reflects_extra_local_layers() {
        let node = TechNode::n45();
        let s2 = MetalStack::new(&node, StackKind::TwoD);
        let s3 = MetalStack::new(&node, StackKind::Tmi);
        // 5 local layers vs 2 -> 2.5x the local track supply.
        let ratio =
            s3.track_supply_per_um(MetalClass::Local) / s2.track_supply_per_um(MetalClass::Local);
        assert!((ratio - 2.5).abs() < 1e-9);
        // Intermediate/global supply is unchanged.
        assert_eq!(
            s3.track_supply_per_um(MetalClass::Global),
            s2.track_supply_per_um(MetalClass::Global)
        );
    }

    #[test]
    fn directions_alternate() {
        let s = MetalStack::new(&TechNode::n45(), StackKind::Tmi);
        for pair in s.layers().windows(2) {
            assert_ne!(pair[0].horizontal, pair[1].horizontal);
        }
    }
}
