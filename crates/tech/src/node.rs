use std::collections::BTreeSet;
use std::sync::Mutex;

use m3d_geom::Nm;
use serde::{Deserialize, Serialize};

use crate::pdk::{DesignRules, PdkRegistry};
use crate::{MetalClass, MivModel};

/// Identifier of a process node: an interned node *name* (`"45nm"`,
/// `"7nm"`, `"fdsoi-miv"`, ...), the stable key the
/// [`PdkRegistry`](crate::PdkRegistry), the artifact cache and the disk
/// store all address nodes by.
///
/// The two paper nodes keep their historical spellings as associated
/// constants, so `NodeId::N45` still reads like the old enum variant:
///
/// ```
/// use m3d_tech::NodeId;
/// assert_eq!(NodeId::N45.label(), "45nm");
/// assert_eq!(NodeId::N7.to_string(), "7nm");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(&'static str);

/// Leak pool backing [`NodeId::intern`]: every distinct name is leaked
/// at most once, so deserializing the same node repeatedly is free.
static INTERN_POOL: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

impl NodeId {
    /// The 45 nm planar bulk node (paper Section 3).
    pub const N45: NodeId = NodeId("45nm");
    /// The ITRS-2011-projected 7 nm multi-gate node (paper Section 5).
    pub const N7: NodeId = NodeId("7nm");

    /// Wraps a static node name. PDK definitions use this; equality and
    /// hashing compare the name itself, so two ids with the same
    /// spelling are the same node regardless of provenance.
    pub const fn from_static(name: &'static str) -> Self {
        NodeId(name)
    }

    /// Interns a runtime node name (deserialization, CLI parsing).
    /// Registered names resolve without allocating; unknown names are
    /// leaked once into a process-wide pool — an unknown node id is
    /// still a *valid identifier* (it compares and hashes by name), it
    /// just fails registry lookups until a PDK registers it.
    pub fn intern(name: &str) -> Self {
        if let Some(id) = PdkRegistry::global().by_name(name) {
            return id;
        }
        let mut pool = INTERN_POOL.lock().expect("node-id intern pool poisoned");
        if let Some(known) = pool.get(name) {
            return NodeId(known);
        }
        let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
        pool.insert(leaked);
        NodeId(leaked)
    }

    /// Human-readable node name (also the registry key).
    pub fn label(self) -> &'static str {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-[`MetalClass`] scalar table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerClass<T> {
    /// Value for [`MetalClass::M1`] (and MB1).
    pub m1: T,
    /// Value for [`MetalClass::Local`].
    pub local: T,
    /// Value for [`MetalClass::Intermediate`].
    pub intermediate: T,
    /// Value for [`MetalClass::Global`].
    pub global: T,
}

impl<T: Copy> PerClass<T> {
    /// Looks up the value for `class`.
    pub fn get(&self, class: MetalClass) -> T {
        match class {
            MetalClass::M1 => self.m1,
            MetalClass::Local => self.local,
            MetalClass::Intermediate => self.intermediate,
            MetalClass::Global => self.global,
        }
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, class: MetalClass) -> &mut T {
        match class {
            MetalClass::M1 => &mut self.m1,
            MetalClass::Local => &mut self.local,
            MetalClass::Intermediate => &mut self.intermediate,
            MetalClass::Global => &mut self.global,
        }
    }
}

/// A process technology node: device parameters, physical cell dimensions,
/// dielectric data and the calibrated interconnect material properties.
///
/// Wire unit RC is *derived* from these parameters by [`crate::WireRc`];
/// the effective resistivities are calibrated so the derived values match
/// the paper's published capTable anchors (Section 5: M2 and M8 unit R/C at
/// both nodes).
///
/// # Example
///
/// ```
/// use m3d_tech::TechNode;
/// let n45 = TechNode::n45();
/// assert_eq!(n45.vdd, 1.1);
/// let n7 = TechNode::n7();
/// assert!(n7.cell_height_2d < n45.cell_height_2d);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechNode {
    /// Node identifier.
    pub id: NodeId,
    /// Supply voltage in volts (Table 6: 1.1 V @45, 0.7 V @7).
    pub vdd: f64,
    /// Drawn transistor gate length in nm (50 @45, 11 @7).
    pub gate_length: Nm,
    /// Standard-cell height of the planar 2D library, nm (1400 @45, 218 @7).
    pub cell_height_2d: Nm,
    /// Standard-cell height of the folded T-MI library, nm. The fold gives
    /// a 40 % reduction (840 @45), limited by P/NMOS size mismatch and the
    /// silicon area MIVs need on the top tier (Section 3.2).
    pub cell_height_tmi: Nm,
    /// Back-end-of-line inter-layer dielectric constant (2.5 @45, 2.2 @7).
    pub ild_k: f64,
    /// Inter-tier ILD thickness between the T-MI tiers, nm (110 @45, 50 @7).
    pub ild_thickness: Nm,
    /// Top-tier silicon thickness for T-MI, nm (30 in [Batude 2009]).
    pub top_silicon_thickness: Nm,
    /// Monolithic inter-tier via model.
    pub miv: MivModel,
    /// Calibrated effective Cu resistivity per metal class, in µΩ·cm.
    /// Captures size effects (edge scattering, barrier); the 7 nm local
    /// value of 15.02 µΩ·cm is the ITRS 2011 projection quoted in Table 10.
    pub rho_eff: PerClass<f64>,
    /// Calibrated unit-length wire capacitance per metal class, fF/µm
    /// (capTable anchor values; see Section 5 of the paper).
    pub c_unit: PerClass<f64>,
    /// Resistance of a single inter-layer via cut, kΩ.
    pub via_resistance: f64,
    /// Resistance of a cell-level contact (CT/CTB), kΩ.
    pub contact_resistance: f64,
    /// Geometric shrink from the 45 nm base node (1.0 @45, 7/45 @7).
    /// Data, not a match on the id: each PDK sets it from its own
    /// [`crate::ScaleFactors::dimension`].
    pub dim_scale: f64,
    /// Node design rules the physical stages consume (MIV keep-out
    /// zones, ...); owned by the node's PDK definition.
    pub rules: DesignRules,
}

impl TechNode {
    /// The 45 nm planar bulk node of the paper's Sections 3-4.
    pub fn n45() -> Self {
        TechNode {
            id: NodeId::N45,
            vdd: 1.1,
            gate_length: 50,
            cell_height_2d: 1400,
            cell_height_tmi: 840,
            ild_k: 2.5,
            ild_thickness: 110,
            top_silicon_thickness: 30,
            miv: MivModel::n45(),
            // Calibration: rho[µΩ·cm] = R[Ω/µm] * w[nm] * t[nm] / 1e4.
            // Local anchor  3.57 Ω/µm @ 70x140 nm  -> 3.50
            // Global anchor 0.188 Ω/µm @ 400x800 nm -> 6.02
            rho_eff: PerClass {
                m1: 3.50,
                local: 3.50,
                intermediate: 4.00,
                global: 6.02,
            },
            // Paper anchors: M2 0.106 fF/µm, M8 0.100 fF/µm.
            c_unit: PerClass {
                m1: 0.106,
                local: 0.106,
                intermediate: 0.103,
                global: 0.100,
            },
            via_resistance: 0.005,
            contact_resistance: 0.010,
            dim_scale: 1.0,
            rules: DesignRules::default(),
        }
    }

    /// The ITRS-projected 7 nm multi-gate node of the paper's Sections 5-6.
    pub fn n7() -> Self {
        TechNode {
            id: NodeId::N7,
            vdd: 0.7,
            gate_length: 11,
            cell_height_2d: 218,
            cell_height_tmi: 131,
            ild_k: 2.2,
            ild_thickness: 50,
            top_silicon_thickness: 10,
            miv: MivModel::n7(),
            // Local anchor 638 Ω/µm @ 10.8x21.8 nm -> 15.02 µΩ·cm, the ITRS
            // 2011 projection for local/intermediate Cu at 7 nm (Table 10).
            rho_eff: PerClass {
                m1: 15.02,
                local: 15.02,
                intermediate: 8.00,
                global: 2.06,
            },
            // Paper anchors: M2 0.153 fF/µm, M8 0.095 fF/µm.
            c_unit: PerClass {
                m1: 0.153,
                local: 0.153,
                intermediate: 0.120,
                global: 0.095,
            },
            via_resistance: 0.060,
            contact_resistance: 0.120,
            // One source of truth: the ITRS dimension factor of
            // `crate::ITRS_7NM_SCALING` (7/45), not a second literal.
            dim_scale: crate::ITRS_7NM_SCALING.dimension,
            rules: DesignRules::default(),
        }
    }

    /// Constructs the node for an id via the [`PdkRegistry`].
    ///
    /// # Panics
    ///
    /// Panics if `id` names no registered PDK; use
    /// [`TechNode::try_for_id`] where an unregistered node is a
    /// recoverable condition (codec decode paths).
    pub fn for_id(id: NodeId) -> Self {
        Self::try_for_id(id).unwrap_or_else(|| panic!("node '{id}' names no registered PDK"))
    }

    /// Fallible form of [`TechNode::for_id`]: `None` when `id` names no
    /// registered PDK.
    pub fn try_for_id(id: NodeId) -> Option<Self> {
        PdkRegistry::global().get(id).map(|pdk| pdk.tech_node())
    }

    /// Geometric shrink from 45 nm for this node (1.0 @45, 7/45 @7).
    pub fn dimension_scale(&self) -> f64 {
        self.dim_scale
    }

    /// Cell height for a design style.
    pub fn cell_height(&self, style: crate::DesignStyle) -> Nm {
        match style {
            crate::DesignStyle::TwoD => self.cell_height_2d,
            crate::DesignStyle::Tmi => self.cell_height_tmi,
        }
    }

    /// Scales the effective resistivity of the given metal classes by
    /// `factor`, returning the modified node.
    ///
    /// This implements the paper's Table 9 study ("-m": local and
    /// intermediate resistivity halved to model better future interconnect
    /// materials).
    ///
    /// ```
    /// use m3d_tech::{MetalClass, TechNode};
    /// let n = TechNode::n7()
    ///     .with_rho_scaled(&[MetalClass::Local, MetalClass::Intermediate], 0.5);
    /// assert!((n.rho_eff.local - 7.51).abs() < 1e-9);
    /// ```
    pub fn with_rho_scaled(mut self, classes: &[MetalClass], factor: f64) -> Self {
        for &c in classes {
            *self.rho_eff.get_mut(c) *= factor;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n45_matches_table6() {
        let n = TechNode::n45();
        assert_eq!(n.vdd, 1.1);
        assert_eq!(n.gate_length, 50);
        assert_eq!(n.cell_height_2d, 1400);
        assert_eq!(n.ild_thickness, 110);
        assert_eq!(n.miv.diameter, 70);
        assert_eq!(n.ild_k, 2.5);
    }

    #[test]
    fn n7_matches_table6() {
        let n = TechNode::n7();
        assert_eq!(n.vdd, 0.7);
        assert_eq!(n.gate_length, 11);
        assert_eq!(n.cell_height_2d, 218);
        assert_eq!(n.ild_thickness, 50);
        assert_eq!(n.miv.diameter, 11);
        assert_eq!(n.ild_k, 2.2);
    }

    #[test]
    fn tmi_cell_height_is_40_percent_smaller() {
        let n = TechNode::n45();
        let ratio = n.cell_height_tmi as f64 / n.cell_height_2d as f64;
        assert!((ratio - 0.6).abs() < 1e-9);
    }

    #[test]
    fn rho_scaling_only_touches_selected_classes() {
        let n = TechNode::n7().with_rho_scaled(&[MetalClass::Local], 0.5);
        let base = TechNode::n7();
        assert!((n.rho_eff.local - base.rho_eff.local * 0.5).abs() < 1e-12);
        assert_eq!(n.rho_eff.global, base.rho_eff.global);
        assert_eq!(n.rho_eff.intermediate, base.rho_eff.intermediate);
    }

    #[test]
    fn node_ids_compare_by_name() {
        assert_eq!(NodeId::intern("45nm"), NodeId::N45);
        assert_eq!(NodeId::from_static("7nm"), NodeId::N7);
        let custom = NodeId::intern("made-up-node");
        assert_eq!(custom, NodeId::intern("made-up-node"));
        assert_ne!(custom, NodeId::N45);
        assert_eq!(custom.label(), "made-up-node");
    }

    #[test]
    fn for_id_resolves_every_registered_pdk() {
        for id in crate::PdkRegistry::global().ids() {
            let node = TechNode::for_id(id);
            assert_eq!(node.id, id);
            assert!(node.dim_scale > 0.0 && node.dim_scale <= 1.0);
        }
        assert!(TechNode::try_for_id(NodeId::intern("unregistered")).is_none());
    }

    #[test]
    fn dimension_scale_is_data_from_the_scaling_factors() {
        assert_eq!(TechNode::n45().dimension_scale(), 1.0);
        assert_eq!(
            TechNode::n7().dimension_scale(),
            crate::ITRS_7NM_SCALING.dimension
        );
    }

    #[test]
    fn per_class_get_mut_round_trips() {
        let mut p = PerClass {
            m1: 1.0,
            local: 2.0,
            intermediate: 3.0,
            global: 4.0,
        };
        for c in MetalClass::ALL {
            *p.get_mut(c) *= 10.0;
        }
        assert_eq!(p.get(MetalClass::Global), 40.0);
        assert_eq!(p.get(MetalClass::M1), 10.0);
    }
}
