use serde::{Deserialize, Serialize};

use crate::{MetalClass, MetalLayer, TechNode};

/// Unit-length electrical model of a wire on one metal layer.
///
/// This is the toolkit's analogue of the Cadence capTable the paper builds
/// with EM simulations (Sections 3.3 and 5). Resistance is derived from the
/// node's calibrated effective resistivity and the layer cross-section;
/// capacitance uses the node's calibrated per-class anchor values.
///
/// # Example
///
/// ```
/// use m3d_tech::{MetalStack, StackKind, TechNode, WireRc};
///
/// let node = TechNode::n45();
/// let stack = MetalStack::new(&node, StackKind::TwoD);
/// let m2 = stack.by_name("M2").expect("M2 exists");
/// let rc = WireRc::for_layer(&node, m2);
/// // Paper anchor: 3.57 Ohm/um and 0.106 fF/um for 45 nm M2.
/// assert!((rc.r_per_um * 1000.0 - 3.57).abs() / 3.57 < 0.02);
/// assert!((rc.c_per_um - 0.106).abs() / 0.106 < 0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WireRc {
    /// Resistance per µm of wire, kΩ/µm.
    pub r_per_um: f64,
    /// Capacitance per µm of wire, fF/µm.
    pub c_per_um: f64,
}

impl WireRc {
    /// Derives the unit RC of `layer` under `node`'s material parameters.
    pub fn for_layer(node: &TechNode, layer: &MetalLayer) -> Self {
        Self::for_cross_section(
            node,
            layer.class,
            layer.width as f64,
            layer.thickness as f64,
        )
    }

    /// Derives the unit RC for an explicit cross-section (nm). Used by the
    /// cell-internal extractor where wire widths differ from routing tracks.
    pub fn for_cross_section(
        node: &TechNode,
        class: MetalClass,
        width_nm: f64,
        thickness_nm: f64,
    ) -> Self {
        // R[Ω/µm] = rho[µΩ·cm] * 1e4 / (w[nm] * t[nm]); convert to kΩ/µm.
        let rho = node.rho_eff.get(class);
        let r_ohm_per_um = rho * 1.0e4 / (width_nm * thickness_nm);
        WireRc {
            r_per_um: r_ohm_per_um * 1.0e-3,
            c_per_um: node.c_unit.get(class),
        }
    }

    /// Total resistance of `len_um` µm of this wire, kΩ.
    pub fn resistance(&self, len_um: f64) -> f64 {
        self.r_per_um * len_um
    }

    /// Total capacitance of `len_um` µm of this wire, fF.
    pub fn capacitance(&self, len_um: f64) -> f64 {
        self.c_per_um * len_um
    }

    /// Distributed-RC Elmore delay of an unloaded `len_um` µm wire, ps
    /// (0.5·R·C for a uniform line).
    pub fn elmore_delay(&self, len_um: f64) -> f64 {
        0.5 * self.resistance(len_um) * self.capacitance(len_um)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetalStack, StackKind};

    fn rc(node: &TechNode, kind: StackKind, name: &str) -> WireRc {
        let stack = MetalStack::new(node, kind);
        let layer = stack
            .by_name(name)
            .unwrap_or_else(|| panic!("{name} exists"));
        WireRc::for_layer(node, layer)
    }

    #[test]
    fn n45_anchors_match_paper() {
        let node = TechNode::n45();
        let m2 = rc(&node, StackKind::TwoD, "M2");
        assert!(
            (m2.r_per_um * 1e3 - 3.57).abs() / 3.57 < 0.02,
            "M2 R = {} Ohm/um",
            m2.r_per_um * 1e3
        );
        assert!((m2.c_per_um - 0.106).abs() < 1e-9);
        let m8 = rc(&node, StackKind::TwoD, "M8");
        assert!(
            (m8.r_per_um * 1e3 - 0.188).abs() / 0.188 < 0.02,
            "M8 R = {} Ohm/um",
            m8.r_per_um * 1e3
        );
        assert!((m8.c_per_um - 0.100).abs() < 1e-9);
    }

    #[test]
    fn n7_anchors_match_paper() {
        let node = TechNode::n7();
        let m2 = rc(&node, StackKind::TwoD, "M2");
        // Paper: 638 Ohm/um for 7 nm M2 (local layers become very resistive).
        assert!(
            (m2.r_per_um * 1e3 - 638.0).abs() / 638.0 < 0.05,
            "M2 R = {} Ohm/um",
            m2.r_per_um * 1e3
        );
        assert!((m2.c_per_um - 0.153).abs() < 1e-9);
        let m8 = rc(&node, StackKind::TwoD, "M8");
        assert!(
            (m8.r_per_um * 1e3 - 2.65).abs() / 2.65 < 0.05,
            "M8 R = {} Ohm/um",
            m8.r_per_um * 1e3
        );
    }

    #[test]
    fn local_layers_degrade_much_faster_than_global() {
        // The key 7 nm observation of Section 5: local R blows up ~180x
        // while global R grows only ~14x.
        let n45 = TechNode::n45();
        let n7 = TechNode::n7();
        let local_growth =
            rc(&n7, StackKind::TwoD, "M2").r_per_um / rc(&n45, StackKind::TwoD, "M2").r_per_um;
        let global_growth =
            rc(&n7, StackKind::TwoD, "M8").r_per_um / rc(&n45, StackKind::TwoD, "M8").r_per_um;
        assert!(local_growth > 150.0, "local growth {local_growth}");
        assert!(global_growth < 20.0, "global growth {global_growth}");
    }

    #[test]
    fn elmore_delay_is_quadratic_in_length() {
        let node = TechNode::n45();
        let m2 = rc(&node, StackKind::TwoD, "M2");
        let d1 = m2.elmore_delay(100.0);
        let d2 = m2.elmore_delay(200.0);
        assert!((d2 / d1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn resistivity_override_halves_resistance() {
        let node = TechNode::n7().with_rho_scaled(&[MetalClass::Local], 0.5);
        let base = TechNode::n7();
        let r_scaled = rc(&node, StackKind::TwoD, "M2").r_per_um;
        let r_base = rc(&base, StackKind::TwoD, "M2").r_per_um;
        assert!((r_scaled / r_base - 0.5).abs() < 1e-12);
    }
}
