use serde::{Deserialize, Serialize};

/// The 45 nm → 7 nm scaling factors of the paper's Section 5 and
/// supplement S3, derived there from preliminary SPICE simulations of
/// PTM-MG 7 nm cells.
///
/// Multiplying a 45 nm Liberty quantity by the corresponding factor yields
/// its 7 nm projection; this is exactly how the paper builds its 7 nm
/// library ("We apply these scaling factors to the 45nm Liberty library and
/// create our 7nm Liberty library").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleFactors {
    /// Physical shrink of cell shapes (7/45 = 0.156).
    pub dimension: f64,
    /// Cell input pin capacitance (0.179).
    pub input_cap: f64,
    /// Cell delay (0.471).
    pub cell_delay: f64,
    /// Cell output slew (0.420).
    pub output_slew: f64,
    /// Cell internal (dynamic) power (0.084).
    pub cell_power: f64,
    /// Cell leakage power (0.678).
    pub leakage: f64,
    /// Cell-internal parasitic resistance components (7.7: thinner metal
    /// plus 20 % higher effective resistivity; see S3).
    pub internal_r: f64,
    /// Cell-internal parasitic capacitance components (0.156: unit-length
    /// C unchanged, lengths shrink with dimension).
    pub internal_c: f64,
}

/// The ITRS-2011-derived factors used throughout the paper's 7 nm study.
pub const ITRS_7NM_SCALING: ScaleFactors = ScaleFactors {
    dimension: 7.0 / 45.0,
    input_cap: 0.179,
    cell_delay: 0.471,
    output_slew: 0.420,
    cell_power: 0.084,
    leakage: 0.678,
    internal_r: 7.7,
    internal_c: 7.0 / 45.0,
};

impl ScaleFactors {
    /// Identity scaling (used for the 45 nm baseline).
    pub fn identity() -> Self {
        ScaleFactors {
            dimension: 1.0,
            input_cap: 1.0,
            cell_delay: 1.0,
            output_slew: 1.0,
            cell_power: 1.0,
            leakage: 1.0,
            internal_r: 1.0,
            internal_c: 1.0,
        }
    }

    /// Area scale (dimension squared).
    pub fn area(&self) -> f64 {
        self.dimension * self.dimension
    }
}

impl Default for ScaleFactors {
    fn default() -> Self {
        Self::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn itrs_factors_match_section_5() {
        let s = ITRS_7NM_SCALING;
        assert!((s.dimension - 0.1556).abs() < 1e-3);
        assert_eq!(s.input_cap, 0.179);
        assert_eq!(s.cell_delay, 0.471);
        assert_eq!(s.output_slew, 0.420);
        assert_eq!(s.cell_power, 0.084);
        assert_eq!(s.leakage, 0.678);
        assert_eq!(s.internal_r, 7.7);
    }

    #[test]
    fn identity_is_default_and_neutral() {
        let s = ScaleFactors::default();
        assert_eq!(s, ScaleFactors::identity());
        assert_eq!(s.area(), 1.0);
    }

    #[test]
    fn internal_r_times_internal_c_is_near_1_2() {
        // 7.7 * 0.156 = 1.20: cell-internal RC delay grows slightly at 7 nm,
        // one reason the paper's 7 nm local wires "become very resistive".
        let s = ITRS_7NM_SCALING;
        let rc = s.internal_r * s.internal_c;
        assert!((rc - 1.2).abs() < 0.01, "rc = {rc}");
    }
}
