use m3d_geom::Nm;
use serde::{Deserialize, Serialize};

/// Electrical and geometric model of a monolithic inter-tier via (MIV).
///
/// MIVs are roughly two orders of magnitude smaller than TSVs (70 nm
/// diameter at the 45 nm node vs multi-µm TSVs) with "almost negligible
/// parasitic RC" (paper Section 1). They connect the bottom-tier MB1 metal
/// to top-tier M1 through the inter-tier ILD.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MivModel {
    /// Via diameter in nm (70 @45 nm, 10.8 -> 11 @7 nm).
    pub diameter: Nm,
    /// Via height in nm: the inter-tier ILD plus the top silicon it pierces.
    pub height: Nm,
    /// Series resistance per MIV, kΩ.
    pub resistance: f64,
    /// Parasitic capacitance per MIV, fF.
    pub capacitance: f64,
}

impl MivModel {
    /// MIV model for the 45 nm node.
    pub fn n45() -> Self {
        MivModel {
            diameter: 70,
            height: 140,
            resistance: 0.004,
            capacitance: 0.10,
        }
    }

    /// MIV model for the projected 7 nm node. The ILD is thinned to 50 nm
    /// to keep the aspect ratio reasonable at the 10.8 nm diameter
    /// (paper Section 5).
    pub fn n7() -> Self {
        MivModel {
            diameter: 11,
            height: 60,
            resistance: 0.040,
            capacitance: 0.015,
        }
    }

    /// Aspect ratio (height / diameter); fabrication typically wants < 10.
    pub fn aspect_ratio(&self) -> f64 {
        self.height as f64 / self.diameter as f64
    }

    /// Keep-out footprint edge on the top tier: the silicon area an MIV
    /// consumes next to the NMOS devices (Section 3.1/3.2).
    pub fn keepout_edge(&self) -> Nm {
        self.diameter * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aspect_ratios_stay_manufacturable() {
        assert!(MivModel::n45().aspect_ratio() < 10.0);
        assert!(MivModel::n7().aspect_ratio() < 10.0);
    }

    #[test]
    fn miv_rc_is_negligible_vs_typical_net() {
        // A 10 µm M2 wire at 45 nm has R ~ 35.7 Ω and C ~ 1.06 fF;
        // the MIV is well below both.
        let miv = MivModel::n45();
        assert!(miv.resistance < 0.036);
        assert!(miv.capacitance < 1.0);
    }

    #[test]
    fn n7_miv_shrinks_with_node() {
        // 11 nm vs 70 nm: the MIV shrinks with the dimension scale (0.156x).
        assert!(MivModel::n7().diameter <= MivModel::n45().diameter / 6);
    }
}
