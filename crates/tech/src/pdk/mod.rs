//! Process design kits (PDKs) and the process-node registry.
//!
//! A [`Pdk`] packages everything node-specific the flow consumes — the
//! [`TechNode`] parameters (layer geometry, wire/MIV models, design
//! rules), the Liberty-style [`ScaleFactors`] used to project a base
//! library onto the node, the [`LibraryRecipe`] telling `m3d-cells` how
//! to construct the node's standard cells, and the per-benchmark clock
//! targets. The [`PdkRegistry`] maps stable node *names* (the
//! [`NodeId`]) to their PDKs, so adding a process node is additive data:
//! define one `Pdk` impl in its own module and register it — no enum
//! arms anywhere else in the workspace.
//!
//! Three backends ship built in:
//!
//! | name | backend | source |
//! |---|---|---|
//! | `45nm` | [`N45Pdk`] | paper Sections 3–4 (Nangate-45-class) |
//! | `7nm` | [`N7Pdk`] | paper Sections 5–6 (ITRS-2011 projection) |
//! | `fdsoi-miv` | [`FdsoiMivPdk`] | arXiv 2306.14032 / 2304.13808 |

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use m3d_geom::Nm;
use serde::{Deserialize, Serialize};

use crate::{NodeId, ScaleFactors, TechNode};

mod fdsoi;
mod n45;
mod n7;

pub use fdsoi::FdsoiMivPdk;
pub use n45::N45Pdk;
pub use n7::N7Pdk;

/// How `m3d-cells` builds a node's standard-cell library.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LibraryRecipe {
    /// Generate layouts and characterize directly at the node's own
    /// geometry (the 45 nm base flow).
    Native,
    /// Build the base node's library first, then project every Liberty
    /// quantity through the PDK's [`ScaleFactors`] while regenerating the
    /// layouts at this node's geometry (the paper's 7 nm procedure).
    ScaledFrom {
        /// The node whose library provides the electrical base.
        base: NodeId,
    },
}

/// Node design rules the physical stages consume.
///
/// Carried on the [`TechNode`] so the placer and legalizer read them as
/// plain data, with the owning [`Pdk`] as the single source of truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DesignRules {
    /// MIV keep-out-zone margin, nm per cell side: folded cells that
    /// carry MIVs must keep this much clear spacing to each neighbour
    /// (arXiv 2304.13808). Zero on nodes whose MIVs are small enough to
    /// live inside the cell outline (the paper's 45 nm / 7 nm models).
    pub miv_koz_nm: Nm,
}

/// A process design kit: one process node's complete, self-contained
/// technology definition.
///
/// Implementations are registered in the [`PdkRegistry`]; everything
/// else in the workspace reaches node-specific data through registry
/// lookups keyed by [`NodeId`].
pub trait Pdk: Send + Sync {
    /// Stable registry name; doubles as the node's report label
    /// (`NodeId::label`). Must be unique among registered PDKs.
    fn name(&self) -> &'static str;

    /// One-line human description for listings.
    fn description(&self) -> &'static str {
        ""
    }

    /// The node's full technology parameters (geometry, dielectrics,
    /// wire/MIV models, design rules).
    fn tech_node(&self) -> TechNode;

    /// Liberty-quantity scaling factors from the 45 nm base library to
    /// this node. Identity for nodes characterized natively.
    fn scaling(&self) -> ScaleFactors {
        ScaleFactors::identity()
    }

    /// How the node's standard-cell library is constructed.
    fn library_recipe(&self) -> LibraryRecipe {
        LibraryRecipe::Native
    }

    /// The node's design rules (also available as `tech_node().rules`).
    fn design_rules(&self) -> DesignRules {
        self.tech_node().rules
    }

    /// Node-level multiplier applied on top of the per-benchmark
    /// relaxation when deriving the default clock scale (2.0 at 7 nm:
    /// resistive local wires need more repeater slack).
    fn clock_scale_mult(&self) -> f64 {
        1.0
    }

    /// Target clock period for a benchmark at this node, ps, keyed by
    /// the benchmark's report name (`"FPU"`, `"AES"`, ...).
    fn target_clock_ps(&self, bench: &str) -> Option<f64>;
}

#[derive(Default)]
struct Inner {
    order: Vec<NodeId>,
    by_id: HashMap<NodeId, Arc<dyn Pdk>>,
}

/// The process-node registry: name → [`Pdk`] with stable registration
/// order (the order CLI listings and the CI node matrix iterate).
pub struct PdkRegistry {
    inner: RwLock<Inner>,
}

impl PdkRegistry {
    /// The process-wide registry, with the three built-in backends
    /// (`45nm`, `7nm`, `fdsoi-miv`) pre-registered.
    pub fn global() -> &'static PdkRegistry {
        static GLOBAL: OnceLock<PdkRegistry> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let r = PdkRegistry {
                inner: RwLock::new(Inner::default()),
            };
            r.register(Arc::new(N45Pdk));
            r.register(Arc::new(N7Pdk));
            r.register(Arc::new(FdsoiMivPdk));
            r
        })
    }

    /// Registers a PDK, returning its [`NodeId`]. Re-registering a name
    /// replaces the previous backend but keeps its listing position.
    pub fn register(&self, pdk: Arc<dyn Pdk>) -> NodeId {
        let id = NodeId::from_static(pdk.name());
        let mut g = self.inner.write().expect("pdk registry poisoned");
        if !g.by_id.contains_key(&id) {
            g.order.push(id);
        }
        g.by_id.insert(id, pdk);
        id
    }

    /// Looks a PDK up by node id.
    pub fn get(&self, id: NodeId) -> Option<Arc<dyn Pdk>> {
        self.inner
            .read()
            .expect("pdk registry poisoned")
            .by_id
            .get(&id)
            .cloned()
    }

    /// Resolves a node name to its id, if registered.
    pub fn by_name(&self, name: &str) -> Option<NodeId> {
        let g = self.inner.read().expect("pdk registry poisoned");
        g.order.iter().copied().find(|id| id.label() == name)
    }

    /// Whether `id` names a registered PDK.
    pub fn contains(&self, id: NodeId) -> bool {
        self.inner
            .read()
            .expect("pdk registry poisoned")
            .by_id
            .contains_key(&id)
    }

    /// Registered node ids, in registration order.
    pub fn ids(&self) -> Vec<NodeId> {
        self.inner
            .read()
            .expect("pdk registry poisoned")
            .order
            .clone()
    }

    /// Registered node names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.ids().into_iter().map(|id| id.label()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_registered_in_order() {
        let names = PdkRegistry::global().names();
        assert_eq!(&names[..3], &["45nm", "7nm", "fdsoi-miv"]);
    }

    #[test]
    fn lookup_by_name_and_id_agree() {
        let reg = PdkRegistry::global();
        for id in reg.ids() {
            let by_name = reg.by_name(id.label()).expect("name resolves");
            assert_eq!(by_name, id);
            assert_eq!(reg.get(id).expect("pdk exists").name(), id.label());
        }
        assert_eq!(reg.by_name("3nm"), None);
    }

    #[test]
    fn builtin_tech_nodes_match_their_constructors() {
        let reg = PdkRegistry::global();
        let n45 = reg.get(NodeId::N45).expect("45nm registered");
        assert_eq!(n45.tech_node(), TechNode::n45());
        assert_eq!(n45.scaling(), ScaleFactors::identity());
        assert_eq!(n45.library_recipe(), LibraryRecipe::Native);
        let n7 = reg.get(NodeId::N7).expect("7nm registered");
        assert_eq!(n7.tech_node(), TechNode::n7());
        assert_eq!(n7.scaling(), crate::ITRS_7NM_SCALING);
        assert_eq!(
            n7.library_recipe(),
            LibraryRecipe::ScaledFrom { base: NodeId::N45 }
        );
    }

    #[test]
    fn paper_nodes_have_zero_koz_fdsoi_does_not() {
        let reg = PdkRegistry::global();
        assert_eq!(
            reg.get(NodeId::N45)
                .expect("45nm")
                .design_rules()
                .miv_koz_nm,
            0
        );
        assert_eq!(
            reg.get(NodeId::N7).expect("7nm").design_rules().miv_koz_nm,
            0
        );
        let fdsoi = reg.by_name("fdsoi-miv").expect("fdsoi registered");
        assert!(reg.get(fdsoi).expect("fdsoi").design_rules().miv_koz_nm > 0);
    }

    #[test]
    fn clock_tables_cover_the_paper_benchmarks() {
        let reg = PdkRegistry::global();
        for id in reg.ids() {
            let pdk = reg.get(id).expect("registered");
            for bench in ["FPU", "AES", "LDPC", "DES", "M256"] {
                assert!(
                    pdk.target_clock_ps(bench).is_some(),
                    "{} missing clock target for {bench}",
                    pdk.name()
                );
            }
            assert_eq!(pdk.target_clock_ps("NOPE"), None);
        }
    }

    #[test]
    fn n7_clock_targets_match_the_paper() {
        let n7 = PdkRegistry::global().get(NodeId::N7).expect("7nm");
        assert_eq!(n7.target_clock_ps("FPU"), Some(720.0));
        assert_eq!(n7.target_clock_ps("M256"), Some(1000.0));
        assert_eq!(n7.clock_scale_mult(), 2.0);
    }
}
