//! The ITRS-projected 7 nm backend (paper Sections 5–6).

use super::{LibraryRecipe, Pdk};
use crate::{NodeId, ScaleFactors, TechNode, ITRS_7NM_SCALING};

/// The paper's ITRS-2011-projected 7 nm multi-gate node: the 45 nm
/// Liberty library scaled through [`ITRS_7NM_SCALING`], with layouts
/// regenerated at the 7 nm geometry.
pub struct N7Pdk;

impl Pdk for N7Pdk {
    fn name(&self) -> &'static str {
        "7nm"
    }

    fn description(&self) -> &'static str {
        "ITRS-2011-projected 7 nm multi-gate node (paper Sections 5-6)"
    }

    fn tech_node(&self) -> TechNode {
        TechNode::n7()
    }

    fn scaling(&self) -> ScaleFactors {
        ITRS_7NM_SCALING
    }

    fn library_recipe(&self) -> LibraryRecipe {
        LibraryRecipe::ScaledFrom { base: NodeId::N45 }
    }

    fn clock_scale_mult(&self) -> f64 {
        // The very resistive 7 nm local wires need twice the repeater
        // slack of the 45 nm baseline (see `default_clock_scale_at`).
        2.0
    }

    fn target_clock_ps(&self, bench: &str) -> Option<f64> {
        // Paper Table 12, 7 nm column.
        Some(match bench {
            "FPU" => 720.0,
            "AES" => 270.0,
            "LDPC" => 900.0,
            "DES" => 300.0,
            "M256" => 1000.0,
            _ => return None,
        })
    }
}
