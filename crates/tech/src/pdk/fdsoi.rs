//! The FDSOI MIV-transistor backend (arXiv 2306.14032 / 2304.13808).
//!
//! A 28 nm-class fully-depleted SOI monolithic-3D process whose
//! inter-tier connections are *MIV-transistors*: the via doubles as the
//! top-tier device channel, so the folded cells keep their MIV count but
//! every MIV carries a keep-out zone on the top tier that placement and
//! legalization must honour (arXiv 2304.13808). This module is the whole
//! definition of the node — registering it is the only step; no code
//! elsewhere in the workspace names it.

use super::{DesignRules, LibraryRecipe, Pdk};
use crate::{MivModel, NodeId, PerClass, ScaleFactors, TechNode};

/// Liberty scaling from the 45 nm base to the 28 nm-class FDSOI node.
///
/// Moderate geometric shrink (28/45), FDSOI's strong electrostatics
/// (steep subthreshold slope → much lower leakage, lower junction
/// capacitance → lower input cap and power), and copper wires that are
/// not yet deep into the resistivity-size-effect regime.
const FDSOI_SCALING: ScaleFactors = ScaleFactors {
    dimension: 28.0 / 45.0,
    input_cap: 0.55,
    cell_delay: 0.72,
    output_slew: 0.65,
    cell_power: 0.40,
    leakage: 0.25,
    internal_r: 2.2,
    internal_c: 28.0 / 45.0,
};

/// The FDSOI MIV-transistor monolithic-3D node.
pub struct FdsoiMivPdk;

impl Pdk for FdsoiMivPdk {
    fn name(&self) -> &'static str {
        "fdsoi-miv"
    }

    fn description(&self) -> &'static str {
        "28 nm-class FDSOI M3D with MIV-transistors and MIV keep-out zones \
         (arXiv 2306.14032 / 2304.13808)"
    }

    fn tech_node(&self) -> TechNode {
        TechNode {
            id: NodeId::from_static("fdsoi-miv"),
            vdd: 1.0,
            gate_length: 28,
            cell_height_2d: 870,
            cell_height_tmi: 522,
            ild_k: 2.4,
            ild_thickness: 80,
            top_silicon_thickness: 20,
            // The MIV-transistor: a 40 nm via whose upper end is the
            // top-tier FDSOI channel. Slightly higher R than a plain
            // metal MIV (it crosses the gate stack), still negligible
            // against wires.
            miv: MivModel {
                diameter: 40,
                height: 100,
                resistance: 0.012,
                capacitance: 0.05,
            },
            rho_eff: PerClass {
                m1: 4.80,
                local: 4.80,
                intermediate: 4.40,
                global: 5.50,
            },
            c_unit: PerClass {
                m1: 0.115,
                local: 0.115,
                intermediate: 0.108,
                global: 0.098,
            },
            via_resistance: 0.012,
            contact_resistance: 0.030,
            dim_scale: FDSOI_SCALING.dimension,
            rules: DesignRules { miv_koz_nm: 60 },
        }
    }

    fn scaling(&self) -> ScaleFactors {
        FDSOI_SCALING
    }

    fn library_recipe(&self) -> LibraryRecipe {
        LibraryRecipe::ScaledFrom { base: NodeId::N45 }
    }

    fn clock_scale_mult(&self) -> f64 {
        1.5
    }

    fn target_clock_ps(&self, bench: &str) -> Option<f64> {
        // 0.8x the 45 nm targets: the node is faster, but the KOZ-padded
        // T-MI cells give back some of the wirelength benefit.
        Some(match bench {
            "FPU" => 1440.0,
            "AES" => 640.0,
            "LDPC" => 1920.0,
            "DES" => 800.0,
            "M256" => 1920.0,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fdsoi_node_is_between_45_and_7() {
        let f = FdsoiMivPdk.tech_node();
        let n45 = TechNode::n45();
        let n7 = TechNode::n7();
        assert!(f.gate_length < n45.gate_length && f.gate_length > n7.gate_length);
        assert!(f.cell_height_2d < n45.cell_height_2d && f.cell_height_2d > n7.cell_height_2d);
        assert!(f.vdd < n45.vdd && f.vdd > n7.vdd);
        assert!(
            f.miv.aspect_ratio() < 10.0,
            "MIV-transistor stays manufacturable"
        );
    }

    #[test]
    fn keep_out_zone_is_a_first_class_rule() {
        let f = FdsoiMivPdk.tech_node();
        assert_eq!(f.rules.miv_koz_nm, 60);
        assert_eq!(FdsoiMivPdk.design_rules().miv_koz_nm, 60);
    }

    #[test]
    fn scaling_shrinks_everything_but_internal_r() {
        let s = FdsoiMivPdk.scaling();
        assert!(s.dimension < 1.0 && s.input_cap < 1.0 && s.cell_delay < 1.0);
        assert!(s.leakage < 0.5, "FDSOI's electrostatics cut leakage hard");
        assert!(
            s.internal_r > 1.0,
            "thinner in-cell metal is more resistive"
        );
    }
}
