//! The 45 nm planar bulk backend (paper Sections 3–4).

use super::Pdk;
use crate::TechNode;

/// The paper's 45 nm planar bulk CMOS node: the native base library every
/// scaled backend projects from.
pub struct N45Pdk;

impl Pdk for N45Pdk {
    fn name(&self) -> &'static str {
        "45nm"
    }

    fn description(&self) -> &'static str {
        "45 nm planar bulk CMOS (Nangate-45-class, paper Sections 3-4)"
    }

    fn tech_node(&self) -> TechNode {
        TechNode::n45()
    }

    fn target_clock_ps(&self, bench: &str) -> Option<f64> {
        // Paper Table 12, 45 nm column.
        Some(match bench {
            "FPU" => 1800.0,
            "AES" => 800.0,
            "LDPC" => 2400.0,
            "DES" => 1000.0,
            "M256" => 2400.0,
            _ => return None,
        })
    }
}
