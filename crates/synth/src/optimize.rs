use serde::{Deserialize, Serialize};

use m3d_cells::{CellFunction, CellLibrary};
use m3d_netlist::Netlist;
use m3d_sta::{plan_timing_moves, try_analyze, NetModel, OptMove, StaError, TimingConfig};
use m3d_tech::{MetalClass, MetalStack, TechNode, WireRc};

use crate::WireLoadModel;

/// Synthesis-optimization configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Target clock period, ps.
    pub clock_ps: f64,
    /// Maximum optimization passes.
    pub passes: usize,
    /// Moves applied per pass.
    pub moves_per_pass: usize,
}

impl SynthConfig {
    /// Defaults for a clock target.
    pub fn new(clock_ps: f64) -> Self {
        SynthConfig {
            clock_ps,
            passes: 6,
            moves_per_pass: 4000,
        }
    }
}

/// Estimated per-net electrical models from a wire-load model: length by
/// fanout, unit RC by the metal class a net of that length would ride.
pub fn wlm_net_models(
    netlist: &Netlist,
    wlm: &WireLoadModel,
    node: &TechNode,
    stack: &MetalStack,
) -> Vec<NetModel> {
    let s = node.dimension_scale();
    let thresholds = (30.0 * s, 140.0 * s);
    let rc_of = |class: MetalClass| -> WireRc {
        let layer = stack
            .layers_of(class)
            .next()
            .expect("class present in stack");
        WireRc::for_layer(node, layer)
    };
    let rc_local = rc_of(MetalClass::Local);
    let rc_mid = rc_of(MetalClass::Intermediate);
    let rc_global = rc_of(MetalClass::Global);
    netlist
        .net_ids()
        .map(|id| {
            let sinks = netlist.net(id).sinks.len();
            let len = wlm.estimate_um(sinks);
            let rc = if len <= thresholds.0 {
                rc_local
            } else if len <= thresholds.1 {
                rc_mid
            } else {
                rc_global
            };
            NetModel {
                c_wire: rc.capacitance(len),
                r_wire: rc.resistance(len),
            }
        })
        .collect()
}

/// Synthesis failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthError {
    /// Target clock non-finite or non-positive.
    InvalidClock(f64),
    /// Timing analysis inside the optimization loop failed.
    Timing(StaError),
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::InvalidClock(c) => {
                write!(f, "synthesis clock target must be positive, got {c} ps")
            }
            SynthError::Timing(e) => write!(f, "timing analysis during synthesis: {e}"),
        }
    }
}

impl std::error::Error for SynthError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthError::Timing(e) => Some(e),
            SynthError::InvalidClock(_) => None,
        }
    }
}

impl From<StaError> for SynthError {
    fn from(e: StaError) -> Self {
        SynthError::Timing(e)
    }
}

/// WLM-guided synthesis optimization: sizing and buffering until the
/// clock is met at the WLM estimate or the pass budget is exhausted.
///
/// Buffers are inserted *logically* (no placement yet): the farther half
/// of a net's sinks — by the WLM there is no geometry, so simply half the
/// fanout — moves behind the repeater.
///
/// # Panics
///
/// Panics on a degenerate clock target or an unanalyzable netlist; see
/// [`try_synthesize`] for the fallible form used by the supervised flow.
pub fn synthesize(
    netlist: Netlist,
    lib: &CellLibrary,
    wlm: &WireLoadModel,
    config: &SynthConfig,
) -> Netlist {
    match try_synthesize(netlist, lib, wlm, config) {
        Ok(n) => n,
        Err(e) => panic!("synthesis failed: {e}"),
    }
}

/// Fallible form of [`synthesize`].
///
/// # Errors
///
/// Returns [`SynthError`] when the clock target is degenerate or the
/// netlist cannot be timed (combinational cycle, model mismatch).
pub fn try_synthesize(
    mut netlist: Netlist,
    lib: &CellLibrary,
    wlm: &WireLoadModel,
    config: &SynthConfig,
) -> Result<Netlist, SynthError> {
    if !(config.clock_ps.is_finite() && config.clock_ps > 0.0) {
        return Err(SynthError::InvalidClock(config.clock_ps));
    }
    let node = lib.node().clone();
    let stack = MetalStack::new(&node, lib.style().default_stack());
    let timing = TimingConfig::new(config.clock_ps);
    let buf = lib.smallest(CellFunction::Buf);
    for _pass in 0..config.passes {
        let models = wlm_net_models(&netlist, wlm, &node, &stack);
        let report = try_analyze(&netlist, lib, &models, &timing)?;
        if report.met() {
            break;
        }
        let limit = config.moves_per_pass.max(netlist.net_count() / 3);
        let moves = plan_timing_moves(&netlist, lib, &models, &report, limit);
        if moves.is_empty() {
            break;
        }
        for m in moves {
            match m {
                OptMove::Upsize(inst) => {
                    if let Some((bigger, _)) = lib.upsize(netlist.inst(inst).cell) {
                        netlist.resize(inst, bigger, lib);
                    }
                }
                OptMove::Downsize(inst) => {
                    if let Some((smaller, _)) = lib.downsize(netlist.inst(inst).cell) {
                        netlist.resize(inst, smaller, lib);
                    }
                }
                OptMove::BufferNet { net, repeaters } => {
                    // Pre-placement: peel the farther half of the sinks
                    // (all of them for a two-pin net) behind one repeater
                    // per requested stage (bounded).
                    let mut current = net;
                    for _ in 0..repeaters.min(2) {
                        let sinks = netlist.net(current).sinks.len();
                        if sinks == 0 {
                            break;
                        }
                        let take: Vec<usize> = (sinks / 2..sinks).collect();
                        let (_, new_net) = netlist.insert_repeater(current, &take, buf, lib);
                        current = new_net;
                    }
                }
            }
        }
    }
    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::{BenchScale, Benchmark};
    use m3d_sta::analyze;
    use m3d_tech::DesignStyle;

    fn ctx() -> (TechNode, CellLibrary, Netlist) {
        let node = TechNode::n45();
        let lib = CellLibrary::build(&node, DesignStyle::TwoD);
        let n = Benchmark::Fpu.generate(&lib, BenchScale::Small);
        (node, lib, n)
    }

    #[test]
    fn wlm_models_scale_with_fanout() {
        let (node, lib, n) = ctx();
        let stack = MetalStack::new(&node, m3d_tech::StackKind::TwoD);
        let wlm = WireLoadModel::uniform(5.0, 3.0);
        let models = wlm_net_models(&n, &wlm, &node, &stack);
        // Find a high-fanout and a low-fanout net.
        let mut hi = (0, 0usize);
        for id in n.net_ids() {
            let s = n.net(id).sinks.len();
            if s > hi.1 && Some(id) != n.clock {
                hi = (id.0 as usize, s);
            }
        }
        let lo = n
            .net_ids()
            .find(|&id| n.net(id).sinks.len() == 1)
            .expect("some single-sink net");
        assert!(models[hi.0].c_wire > models[lo.0 as usize].c_wire);
        let _ = lib;
    }

    #[test]
    fn synthesis_fixes_timing_by_adding_area() {
        let (node, lib, n) = ctx();
        let stack = MetalStack::new(&node, m3d_tech::StackKind::TwoD);
        // A heavy WLM creates violations at a moderate clock.
        let wlm = WireLoadModel::uniform(40.0, 20.0);
        let models = wlm_net_models(&n, &wlm, &node, &stack);
        let before = analyze(&n, &lib, &models, &TimingConfig::new(2500.0));
        let cells_before = n.instance_count();
        let out = synthesize(n, &lib, &wlm, &SynthConfig::new(2500.0));
        let models2 = wlm_net_models(&out, &wlm, &node, &stack);
        let after = analyze(&out, &lib, &models2, &TimingConfig::new(2500.0));
        assert!(
            after.wns > before.wns,
            "optimization must improve WNS ({} -> {})",
            before.wns,
            after.wns
        );
        assert!(
            out.instance_count() >= cells_before,
            "buffers/sizing never remove cells here"
        );
    }

    #[test]
    fn met_designs_are_untouched() {
        let (_, lib, n) = ctx();
        let wlm = WireLoadModel::uniform(1.0, 0.5);
        let before = n.instance_count();
        let out = synthesize(n, &lib, &wlm, &SynthConfig::new(1_000_000.0));
        assert_eq!(out.instance_count(), before);
    }
}
