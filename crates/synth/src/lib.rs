//! Wire-load models and synthesis-stage optimization.
//!
//! The paper's synthesis step (Section 3.4) is guided by per-circuit
//! wire-load models: fanout → statistical wirelength tables extracted
//! from preliminary layouts, with T-MI's 20-30 % shorter wires baked into
//! T-MI-specific WLMs so that "the synthesized netlists for 2D and T-MI
//! are different". Table 15 / S7 then measures what happens when the T-MI
//! design is synthesized with the 2D WLM instead.
//!
//! * [`WireLoadModel`] — the fanout → length table, built either from a
//!   placement ([`WireLoadModel::from_placement`], the paper's
//!   "preliminary layout simulations") or analytically.
//! * [`synthesize`] — WLM-driven sizing and buffering over the mapped
//!   netlist until the target clock is met at the WLM estimate (or the
//!   pass budget runs out), producing the Table 12 netlists.
//!
//! # Example
//!
//! ```
//! use m3d_cells::CellLibrary;
//! use m3d_netlist::{BenchScale, Benchmark};
//! use m3d_place::Placer;
//! use m3d_synth::{synthesize, SynthConfig, WireLoadModel};
//! use m3d_tech::{DesignStyle, TechNode};
//!
//! let node = TechNode::n45();
//! let lib = CellLibrary::build(&node, DesignStyle::TwoD);
//! let raw = Benchmark::Aes.generate(&lib, BenchScale::Small);
//! let prelim = Placer::new(&lib).iterations(12).place(&raw);
//! let wlm = WireLoadModel::from_placement(&raw, &prelim);
//! let synthesized = synthesize(raw, &lib, &wlm, &SynthConfig::new(800.0));
//! assert!(synthesized.instance_count() > 0);
//! ```

mod optimize;
mod wlm;

pub use optimize::{synthesize, try_synthesize, wlm_net_models, SynthConfig, SynthError};
pub use wlm::WireLoadModel;
