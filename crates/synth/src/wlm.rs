use serde::{Deserialize, Serialize};

use m3d_netlist::Netlist;
use m3d_place::Placement;

/// A wire-load model: expected wirelength (µm) as a function of net
/// fanout, plus the unit R/C the estimate converts through.
///
/// This is the statistical table Design Compiler consumes; the paper's
/// Fig. 6 plots exactly these curves for the five benchmarks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireLoadModel {
    /// `lengths_um[f]` = mean length of nets with `f+1` sinks; the last
    /// entry extends with a per-sink slope.
    lengths_um: Vec<f64>,
    /// Extra length per sink beyond the table, µm.
    slope_um: f64,
}

impl WireLoadModel {
    /// Maximum tabulated fanout.
    pub const MAX_FANOUT: usize = 20;

    /// Builds the model from a placed design by binning net HPWL by
    /// fanout — the paper's "from preliminary layout simulations, per
    /// each circuit we extract a WLM".
    pub fn from_placement(netlist: &Netlist, placement: &Placement) -> Self {
        let mut sum = [0.0f64; Self::MAX_FANOUT + 1];
        let mut count = [0usize; Self::MAX_FANOUT + 1];
        for id in netlist.net_ids() {
            if Some(id) == netlist.clock {
                continue;
            }
            let sinks = netlist.net(id).sinks.len();
            if sinks == 0 {
                continue;
            }
            let bin = sinks.min(Self::MAX_FANOUT + 1) - 1;
            sum[bin] += placement.net_hpwl_um(netlist, id);
            count[bin] += 1;
        }
        // Fill gaps by interpolation from neighbours; guarantee
        // monotonicity (longer nets for higher fanout).
        let mut lengths: Vec<f64> = (0..=Self::MAX_FANOUT)
            .map(|b| {
                if count[b] > 0 {
                    sum[b] / count[b] as f64
                } else {
                    f64::NAN
                }
            })
            .collect();
        let first_valid = lengths.iter().position(|v| v.is_finite()).unwrap_or(0);
        let mut last = if lengths.is_empty() || !lengths[first_valid].is_finite() {
            1.0
        } else {
            lengths[first_valid]
        };
        for v in &mut lengths {
            if v.is_finite() {
                last = last.max(*v);
                *v = last;
            } else {
                *v = last;
            }
        }
        let slope = if lengths.len() >= 2 {
            ((lengths[lengths.len() - 1] - lengths[0]) / Self::MAX_FANOUT as f64).max(0.1)
        } else {
            1.0
        };
        WireLoadModel {
            lengths_um: lengths,
            slope_um: slope,
        }
    }

    /// A flat synthetic model (mainly for tests): every net `base` µm plus
    /// `slope` per sink.
    pub fn uniform(base: f64, slope: f64) -> Self {
        WireLoadModel {
            lengths_um: (0..=Self::MAX_FANOUT)
                .map(|f| base + slope * f as f64)
                .collect(),
            slope_um: slope,
        }
    }

    /// Estimated length for a net with `sinks` sinks, µm.
    pub fn estimate_um(&self, sinks: usize) -> f64 {
        if sinks == 0 {
            return 0.0;
        }
        let bin = sinks - 1;
        if bin <= Self::MAX_FANOUT {
            self.lengths_um[bin]
        } else {
            self.lengths_um[Self::MAX_FANOUT] + self.slope_um * (bin - Self::MAX_FANOUT) as f64
        }
    }

    /// The fanout → length curve (Fig. 6 data).
    pub fn curve(&self) -> &[f64] {
        &self.lengths_um
    }

    /// Extrapolation slope beyond the tabulated fanouts, µm per sink
    /// (the durable-checkpoint encode path, paired with
    /// [`WireLoadModel::curve`]).
    pub fn slope_um(&self) -> f64 {
        self.slope_um
    }

    /// Reassembles a model from [`WireLoadModel::curve`] /
    /// [`WireLoadModel::slope_um`] parts — the durable-checkpoint decode
    /// path.
    pub fn from_parts(lengths_um: Vec<f64>, slope_um: f64) -> Self {
        WireLoadModel {
            lengths_um,
            slope_um,
        }
    }

    /// Returns a copy with every length scaled by `factor` (used to derive
    /// a first-cut T-MI WLM from a 2D one).
    pub fn scaled(&self, factor: f64) -> Self {
        WireLoadModel {
            lengths_um: self.lengths_um.iter().map(|l| l * factor).collect(),
            slope_um: self.slope_um * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_cells::CellLibrary;
    use m3d_netlist::{BenchScale, Benchmark};
    use m3d_place::Placer;
    use m3d_tech::{DesignStyle, TechNode};

    #[test]
    fn uniform_model_is_affine() {
        let w = WireLoadModel::uniform(5.0, 2.0);
        assert_eq!(w.estimate_um(0), 0.0);
        assert_eq!(w.estimate_um(1), 5.0);
        assert_eq!(w.estimate_um(3), 9.0);
        // Beyond the table: slope extension.
        assert!(w.estimate_um(40) > w.estimate_um(21));
    }

    #[test]
    fn placement_model_is_monotone_in_fanout() {
        let lib = CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD);
        let n = Benchmark::Ldpc.generate(&lib, BenchScale::Small);
        let p = Placer::new(&lib).iterations(12).place(&n);
        let w = WireLoadModel::from_placement(&n, &p);
        let c = w.curve();
        for pair in c.windows(2) {
            assert!(pair[1] >= pair[0], "WLM curve must be monotone");
        }
        assert!(w.estimate_um(1) > 0.0);
    }

    #[test]
    fn tmi_wlm_is_shorter_than_2d() {
        // The folded library shrinks the die, so the measured WLM shrinks
        // with it -- the input to the paper's Section 3.4.
        let lib2 = CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD);
        let lib3 = CellLibrary::build(&TechNode::n45(), DesignStyle::Tmi);
        let n2 = Benchmark::Aes.generate(&lib2, BenchScale::Small);
        let n3 = Benchmark::Aes.generate(&lib3, BenchScale::Small);
        let w2 = WireLoadModel::from_placement(&n2, &Placer::new(&lib2).iterations(12).place(&n2));
        let w3 = WireLoadModel::from_placement(&n3, &Placer::new(&lib3).iterations(12).place(&n3));
        assert!(w3.estimate_um(2) < w2.estimate_um(2));
    }

    #[test]
    fn scaling_shrinks_the_curve() {
        let w = WireLoadModel::uniform(10.0, 1.0).scaled(0.75);
        assert!((w.estimate_um(1) - 7.5).abs() < 1e-12);
    }
}
