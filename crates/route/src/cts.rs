//! Clock-tree synthesis: a recursive-bisection H-tree over the placed
//! flops, with a buffer at every branch point.
//!
//! The main flow models the clock net with the classic
//! `1.5·sqrt(A·N)` H-tree length estimate (see
//! [`crate::Router`]); this module *builds* the tree — splitting the sink
//! set by the longer core dimension at its median, wiring parent to child
//! taps, and reporting per-level wirelength, buffer count and skew-ish
//! depth balance — for flows that want an explicit clock network.
//!
//! # Example
//!
//! ```
//! use m3d_cells::CellLibrary;
//! use m3d_netlist::{BenchScale, Benchmark};
//! use m3d_place::Placer;
//! use m3d_route::cts::{build_clock_tree, CtsConfig};
//! use m3d_tech::{DesignStyle, TechNode};
//!
//! let node = TechNode::n45();
//! let lib = CellLibrary::build(&node, DesignStyle::TwoD);
//! let n = Benchmark::Aes.generate(&lib, BenchScale::Small);
//! let p = Placer::new(&lib).iterations(12).place(&n);
//! let tree = build_clock_tree(&n, &p, &CtsConfig::default());
//! assert!(tree.sink_count > 0);
//! assert!(tree.total_wirelength_um > 0.0);
//! ```

use serde::{Deserialize, Serialize};

use m3d_geom::Point;
use m3d_netlist::Netlist;
use m3d_place::Placement;

/// CTS tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CtsConfig {
    /// Maximum sinks a leaf buffer may drive directly.
    pub max_fanout: usize,
}

impl Default for CtsConfig {
    fn default() -> Self {
        CtsConfig { max_fanout: 16 }
    }
}

impl CtsConfig {
    /// `max_fanout` with a floor of 1: a zero fanout would recurse
    /// forever (a one-sink slice could never become a leaf), so the
    /// builder clamps instead of trusting the caller.
    fn effective_fanout(&self) -> usize {
        self.max_fanout.max(1)
    }
}

/// One branch point of the synthesized tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CtsNode {
    /// Tap location.
    pub at: Point,
    /// Tree level (0 = root).
    pub level: u32,
    /// Number of sinks below this node.
    pub sinks_below: usize,
}

/// The synthesized clock tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClockTree {
    /// Branch points (each hosts one clock buffer).
    pub buffers: Vec<CtsNode>,
    /// Total tree wirelength, µm (trunk segments + leaf stubs).
    pub total_wirelength_um: f64,
    /// Number of clocked sinks served.
    pub sink_count: usize,
    /// Deepest level (≈ insertion-delay depth; a balanced tree keeps the
    /// min and max leaf depths within one level of each other).
    pub depth: u32,
}

impl ClockTree {
    /// Buffers on a level.
    pub fn buffers_at(&self, level: u32) -> usize {
        self.buffers.iter().filter(|b| b.level == level).count()
    }
}

fn centroid(points: &[Point]) -> Point {
    let n = points.len().max(1) as i64;
    let (sx, sy) = points
        .iter()
        .fold((0i64, 0i64), |(x, y), p| (x + p.x, y + p.y));
    Point::new(sx / n, sy / n)
}

fn build_recursive(
    sinks: &mut [Point],
    level: u32,
    cfg: &CtsConfig,
    buffers: &mut Vec<CtsNode>,
    wl_nm: &mut i64,
    depth: &mut u32,
) -> Point {
    let here = centroid(sinks);
    buffers.push(CtsNode {
        at: here,
        level,
        sinks_below: sinks.len(),
    });
    *depth = (*depth).max(level);
    if sinks.len() <= cfg.effective_fanout() {
        // Leaf: direct stubs to each sink.
        for s in sinks.iter() {
            *wl_nm += here.manhattan(*s);
        }
        return here;
    }
    // Split by the spread-out dimension at the median. The slice is
    // non-empty here: `build_clock_tree` rejects empty sink sets before
    // recursing, and both median halves keep at least one sink because
    // `len > effective_fanout() >= 1`.
    let bb = m3d_geom::Rect::bounding(sinks.iter().copied())
        .expect("recursion invariant: sink slices are never empty");
    let by_x = bb.width() >= bb.height();
    if by_x {
        sinks.sort_by_key(|p| p.x);
    } else {
        sinks.sort_by_key(|p| p.y);
    }
    let mid = sinks.len() / 2;
    let (lo, hi) = sinks.split_at_mut(mid);
    let a = build_recursive(lo, level + 1, cfg, buffers, wl_nm, depth);
    let b = build_recursive(hi, level + 1, cfg, buffers, wl_nm, depth);
    *wl_nm += here.manhattan(a) + here.manhattan(b);
    here
}

/// Builds the clock tree over every flop's CK pin in the placed design.
///
/// Returns an empty tree for purely combinational designs.
pub fn build_clock_tree(netlist: &Netlist, placement: &Placement, config: &CtsConfig) -> ClockTree {
    let Some(clock) = netlist.clock else {
        return ClockTree {
            buffers: Vec::new(),
            total_wirelength_um: 0.0,
            sink_count: 0,
            depth: 0,
        };
    };
    let mut sinks: Vec<Point> = netlist
        .net(clock)
        .sinks
        .iter()
        .map(|s| placement.pos(s.inst))
        .collect();
    if sinks.is_empty() {
        return ClockTree {
            buffers: Vec::new(),
            total_wirelength_um: 0.0,
            sink_count: 0,
            depth: 0,
        };
    }
    let mut buffers = Vec::new();
    let mut wl_nm = 0i64;
    let mut depth = 0u32;
    let sink_count = sinks.len();
    build_recursive(&mut sinks, 0, config, &mut buffers, &mut wl_nm, &mut depth);
    ClockTree {
        buffers,
        total_wirelength_um: wl_nm as f64 * 1e-3,
        sink_count,
        depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_cells::CellLibrary;
    use m3d_netlist::{BenchScale, Benchmark};
    use m3d_place::Placer;
    use m3d_tech::{DesignStyle, TechNode};

    fn tree(max_fanout: usize) -> (Netlist, ClockTree) {
        let node = TechNode::n45();
        let lib = CellLibrary::build(&node, DesignStyle::TwoD);
        let n = Benchmark::Des.generate(&lib, BenchScale::Small);
        let p = Placer::new(&lib).iterations(12).place(&n);
        let t = build_clock_tree(&n, &p, &CtsConfig { max_fanout });
        (n, t)
    }

    #[test]
    fn tree_serves_every_flop() {
        let (n, t) = tree(16);
        let clock = n.clock.expect("sequential");
        assert_eq!(t.sink_count, n.net(clock).sinks.len());
        assert!(t.buffers_at(0) == 1, "one root");
        assert!(t.depth >= 1);
    }

    #[test]
    fn tighter_fanout_builds_deeper_trees_with_more_buffers() {
        let (_, loose) = tree(64);
        let (_, tight) = tree(8);
        assert!(tight.buffers.len() > loose.buffers.len());
        assert!(tight.depth >= loose.depth);
    }

    #[test]
    fn tree_length_tracks_the_h_tree_estimate() {
        // The closed-form estimate the router uses should be within a
        // small factor of the synthesized tree.
        let node = TechNode::n45();
        let lib = CellLibrary::build(&node, DesignStyle::TwoD);
        let n = Benchmark::Des.generate(&lib, BenchScale::Small);
        let p = Placer::new(&lib).iterations(12).place(&n);
        let t = build_clock_tree(&n, &p, &CtsConfig::default());
        let clock = n.clock.expect("sequential");
        let estimate = 1.5 * (p.footprint_um2() * n.net(clock).sinks.len() as f64).sqrt();
        let ratio = t.total_wirelength_um / estimate;
        assert!(
            (0.2..2.5).contains(&ratio),
            "tree {} um vs estimate {} um",
            t.total_wirelength_um,
            estimate
        );
    }

    #[test]
    fn zero_fanout_is_clamped_and_terminates() {
        // max_fanout == 0 would otherwise never satisfy the leaf check
        // for a single-sink slice and recurse forever.
        let (n, t) = tree(0);
        let clock = n.clock.expect("sequential");
        assert_eq!(t.sink_count, n.net(clock).sinks.len());
        let (_, one) = tree(1);
        assert_eq!(t.buffers.len(), one.buffers.len());
    }

    #[test]
    fn combinational_designs_get_an_empty_tree() {
        let node = TechNode::n45();
        let lib = CellLibrary::build(&node, DesignStyle::TwoD);
        let mut b = m3d_netlist::NetlistBuilder::new(&lib, "comb");
        let x = b.input();
        let y = b.gate(m3d_cells::CellFunction::Inv, &[x]);
        b.output(y);
        let n = b.finish();
        let p = Placer::new(&lib).iterations(4).place(&n);
        let t = build_clock_tree(&n, &p, &CtsConfig::default());
        assert_eq!(t.sink_count, 0);
        assert!(t.buffers.is_empty());
    }
}
