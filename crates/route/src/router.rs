use serde::{Deserialize, Serialize};

use m3d_cells::CellLibrary;
use m3d_geom::{nm_to_um, Point};
use m3d_netlist::{NetId, Netlist};
use m3d_place::Placement;
use m3d_tech::{MetalClass, MetalStack, TechNode};

use crate::grid::{slot_class, CongestionGrid};

/// One routed net: per-layer segment lengths plus via count, the input to
/// `m3d_extract::extract_net`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RoutedNet {
    /// `(stack layer index, length µm)` segments.
    pub segments: Vec<(u16, f64)>,
    /// Via cuts.
    pub via_count: u32,
    /// Total routed length, µm.
    pub wirelength_um: f64,
    /// The metal class carrying the trunk.
    pub trunk_class: MetalClass,
}

/// The routing result for a whole design.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutedDesign {
    /// Per-net routes, indexed by [`NetId`].
    pub nets: Vec<RoutedNet>,
    /// Final congestion state.
    pub grid: CongestionGrid,
    /// The stack kind that was routed against.
    pub stack: MetalStack,
}

impl RoutedDesign {
    /// Route of one net.
    pub fn net(&self, id: NetId) -> &RoutedNet {
        &self.nets[id.0 as usize]
    }

    /// Total wirelength, µm.
    pub fn total_wirelength_um(&self) -> f64 {
        self.nets.iter().map(|n| n.wirelength_um).sum()
    }

    /// Total wirelength on one metal class, µm.
    pub fn class_wirelength_um(&self, class: MetalClass) -> f64 {
        self.nets
            .iter()
            .flat_map(|n| &n.segments)
            .filter(|(layer, _)| self.stack.layers()[*layer as usize].class == class)
            .map(|(_, len)| len)
            .sum()
    }
}

/// Routing failure.
#[derive(Debug, Clone, PartialEq)]
pub enum RouteError {
    /// The metal stack lacks a layer the router depends on (M1 today).
    MissingLayer {
        /// Layer name the router looked for.
        layer: &'static str,
    },
    /// A net's half-perimeter wirelength evaluated to a non-finite value,
    /// so nets cannot be ordered for routing.
    NonFiniteNetLength {
        /// Offending net id.
        net: u32,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::MissingLayer { layer } => {
                write!(f, "metal stack has no {layer} layer")
            }
            RouteError::NonFiniteNetLength { net } => {
                write!(f, "net {net} has a non-finite wirelength estimate")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// The global router. See the crate docs for the algorithm.
#[derive(Debug, Clone)]
pub struct Router<'a> {
    node: &'a TechNode,
    stack: &'a MetalStack,
    /// Length thresholds (µm) separating local / intermediate / global
    /// trunks, scaled with the node dimension.
    thresholds: (f64, f64),
    /// Base routing detour over the MST length.
    detour: f64,
    /// Allow routing escapes on MB1 / through cell-embedded MIVs. The
    /// paper's S5 study disables these to measure whether the in-cell
    /// MIV/MB1 blockages degrade design quality (they do not).
    mb1_escape: bool,
}

impl<'a> Router<'a> {
    /// Creates a router for a node and stack.
    pub fn new(node: &'a TechNode, stack: &'a MetalStack) -> Self {
        let s = node.dimension_scale();
        Router {
            node,
            stack,
            thresholds: (30.0 * s, 140.0 * s),
            detour: 1.06,
            mb1_escape: true,
        }
    }

    /// Disables MB1/MIV routing escapes (paper S5 ablation).
    pub fn without_mb1(mut self) -> Self {
        self.mb1_escape = false;
        self
    }

    /// Routes every net of the placed design.
    ///
    /// # Panics
    ///
    /// Panics when the stack has no M1 or a net length is non-finite; see
    /// [`Router::try_route`] for the fallible form used by the supervised
    /// flow.
    pub fn route(
        &self,
        netlist: &Netlist,
        placement: &Placement,
        lib: &CellLibrary,
    ) -> RoutedDesign {
        match self.try_route(netlist, placement, lib) {
            Ok(r) => r,
            Err(e) => panic!("routing failed: {e}"),
        }
    }

    /// Fallible form of [`Router::route`].
    ///
    /// # Errors
    ///
    /// Returns [`RouteError`] when the stack is missing M1 or any net's
    /// wirelength estimate is non-finite.
    pub fn try_route(
        &self,
        netlist: &Netlist,
        placement: &Placement,
        lib: &CellLibrary,
    ) -> Result<RoutedDesign, RouteError> {
        if self.stack.by_name("M1").is_none() {
            return Err(RouteError::MissingLayer { layer: "M1" });
        }
        let mut grid = CongestionGrid::new(placement.core, self.stack);
        let mut nets: Vec<RoutedNet> = vec![RoutedNet::default(); netlist.net_count()];

        // Deterministic order: longest nets first so they grab the upper
        // layers before the grid saturates (routers route critical/global
        // first).
        let mut order: Vec<(NetId, f64)> = netlist
            .net_ids()
            .map(|id| (id, placement.net_hpwl_um(netlist, id)))
            .collect();
        if let Some((id, _)) = order.iter().find(|(_, l)| !l.is_finite()) {
            return Err(RouteError::NonFiniteNetLength { net: id.0 });
        }
        order.sort_by(|a, b| b.1.total_cmp(&a.1));

        for (id, hpwl) in order {
            if Some(id) == netlist.clock {
                nets[id.0 as usize] = self.route_clock(netlist, placement, id);
                continue;
            }
            let pts = placement.net_points(netlist, id);
            if pts.len() < 2 || hpwl == 0.0 {
                // Single-pin or zero-length: pin escape only.
                nets[id.0 as usize] = self.pin_escape_only(pts.len());
                continue;
            }
            nets[id.0 as usize] = self.route_net(&pts, &mut grid, lib, netlist, id);
        }
        Ok(RoutedDesign {
            nets,
            grid,
            stack: self.stack.clone(),
        })
    }

    /// Picks a concrete layer pair (H, V) within a class, spreading usage
    /// round-robin by a hash of the net id.
    fn layers_in(&self, class: MetalClass, salt: usize) -> (u16, u16) {
        let layers: Vec<u16> = self.stack.layers_of(class).map(|l| l.index).collect();
        debug_assert!(!layers.is_empty());
        if layers.len() == 1 {
            return (layers[0], layers[0]);
        }
        let h = layers[salt % layers.len()];
        let v = layers[(salt + 1) % layers.len()];
        (h, v)
    }

    fn m1_index(&self) -> u16 {
        self.stack.by_name("M1").expect("every stack has M1").index
    }

    fn pin_escape_only(&self, pins: usize) -> RoutedNet {
        let m1 = self.m1_index();
        let escape = 0.5 * self.node.dimension_scale();
        let len = escape * pins as f64;
        RoutedNet {
            segments: if pins > 0 { vec![(m1, len)] } else { vec![] },
            via_count: pins as u32,
            wirelength_um: len,
            trunk_class: MetalClass::M1,
        }
    }

    fn route_net(
        &self,
        pts: &[Point],
        grid: &mut CongestionGrid,
        _lib: &CellLibrary,
        netlist: &Netlist,
        id: NetId,
    ) -> RoutedNet {
        // MST decomposition (star fallback for very high fanout).
        let edges = mst_edges(pts);
        let mut total_len = 0.0;
        let mut segs_h = 0.0;
        let mut segs_v = 0.0;
        let mut worst_congestion: f64 = 0.0;
        let mut chosen_slot_hist = [0usize; 3];

        for &(a, b) in &edges {
            let pa = pts[a];
            let pb = pts[b];
            let len = nm_to_um(pa.manhattan(pb));
            if len == 0.0 {
                continue;
            }
            // Preferred class by length.
            let preferred = if len <= self.thresholds.0 {
                0
            } else if len <= self.thresholds.1 {
                1
            } else {
                2
            };
            // Candidate (slot, l-shape) choices: preferred first. Long
            // nets may spill one class down under congestion (the paper's
            // 7 nm LDPC mechanism) but a global-length net never lands on
            // the local layers -- at 7 nm that would be electrically
            // unusable (638 Ohm/um), and no router would do it.
            let spill: [usize; 3] = match preferred {
                0 => [0, 1, 2],
                1 => [1, 2, 0],
                _ => [2, 1, 1],
            };
            let bins_h = grid.l_path_bins(pa, pb, true);
            let bins_v = grid.l_path_bins(pa, pb, false);
            let mut best = (preferred, &bins_h, f64::INFINITY);
            'search: for &slot in &spill {
                for bins in [&bins_h, &bins_v] {
                    let c = grid.path_congestion(bins, slot);
                    if c < best.2 {
                        best = (slot, bins, c);
                    }
                    if slot == preferred && c < 0.7 {
                        // Preferred class has room: stop looking.
                        break 'search;
                    }
                }
            }
            let (slot, bins, congestion) = best;
            // Both L-shapes saturated in every class: fall back to a
            // congestion-aware maze route in the preferred class. The
            // detour costs wirelength but relieves the hot bins.
            let bins_owned;
            let (bins, len) = if congestion > 1.0 {
                bins_owned = grid.maze_path(pa, pb, preferred);
                let direct = bins_h.len().max(1) as f64;
                let detoured = len * (bins_owned.len() as f64 / direct).max(1.0);
                (&bins_owned, detoured)
            } else {
                (bins, len)
            };
            let slot = if congestion > 1.0 { preferred } else { slot };
            let track_um = len / bins.len().max(1) as f64;
            grid.commit(bins, slot, track_um);
            worst_congestion = worst_congestion.max(congestion);
            chosen_slot_hist[slot] += 1;
            // Split the length between the H and V legs.
            let dx = nm_to_um((pa.x - pb.x).abs());
            let dy = nm_to_um((pa.y - pb.y).abs());
            segs_h += dx * self.slot_share(slot, 0);
            segs_v += dy * self.slot_share(slot, 0);
            total_len += len;
            // Record per-slot lengths via the histogram below.
            let _ = (segs_h, segs_v);
        }
        let _ = (segs_h, segs_v);

        // Dominant slot carries the trunk; build segments per slot from
        // the histogram-weighted split of the detoured length.
        let detour = self.detour + 0.25 * worst_congestion.max(1.0).ln().max(0.0);
        let routed_len = total_len * detour;
        let total_edges: usize = chosen_slot_hist.iter().sum();
        let mut segments: Vec<(u16, f64)> = Vec::new();
        let salt = id.0 as usize;
        let mut trunk_class = MetalClass::Local;
        let mut best_edges = 0;
        for (slot, &slot_edges) in chosen_slot_hist.iter().enumerate() {
            if slot_edges == 0 {
                continue;
            }
            let share = slot_edges as f64 / total_edges.max(1) as f64;
            let (h, v) = self.layers_in(slot_class(slot), salt);
            let len = routed_len * share;
            segments.push((h, len * 0.5));
            if v != h {
                segments.push((v, len * 0.5));
            } else {
                // Single layer in class: merge.
                let last = segments.len() - 1;
                segments[last].1 += len * 0.5;
            }
            if slot_edges > best_edges {
                best_edges = slot_edges;
                trunk_class = slot_class(slot);
            }
        }
        // Pin escapes on M1 (plus MB1 for folded cells: the paper measures
        // ~0.3 % of wirelength on MB1, Section 3.3).
        let pins = pts.len();
        let m1 = self.m1_index();
        let escape = 0.4 * self.node.dimension_scale();
        segments.push((m1, escape * pins as f64));
        if self.mb1_escape {
            if let Some(mb1) = self.stack.by_name("MB1") {
                segments.push((mb1.index, 0.03 * escape * pins as f64));
            }
        }
        let wirelength_um = segments.iter().map(|(_, l)| l).sum();

        let sinks = netlist.net(id).sinks.len() as u32;
        RoutedNet {
            segments,
            via_count: 2 * edges.len() as u32 + 2 * sinks,
            wirelength_um,
            trunk_class,
        }
    }

    fn slot_share(&self, _slot: usize, _leg: usize) -> f64 {
        1.0
    }

    /// Clock distribution: an H-tree estimate (total length ~
    /// 1.5·sqrt(A·N)) on the intermediate layers plus per-sink stubs. The
    /// real flow would run CTS; the estimate preserves the clock's power
    /// contribution without a full tree synthesis.
    fn route_clock(&self, netlist: &Netlist, placement: &Placement, id: NetId) -> RoutedNet {
        let sinks = netlist.net(id).sinks.len();
        if sinks == 0 {
            return RoutedNet::default();
        }
        let area_um2 = placement.footprint_um2();
        let tree_len = 1.5 * (area_um2 * sinks as f64).sqrt();
        let stub = 1.0 * self.node.dimension_scale();
        let (h, v) = self.layers_in(MetalClass::Intermediate, 7);
        let m1 = self.m1_index();
        let segments = vec![
            (h, tree_len * 0.5),
            (v, tree_len * 0.5),
            (m1, stub * sinks as f64),
        ];
        RoutedNet {
            wirelength_um: segments.iter().map(|(_, l)| l).sum(),
            segments,
            via_count: 2 * sinks as u32,
            trunk_class: MetalClass::Intermediate,
        }
    }
}

/// Prim MST over the points (O(p²), capped by a star topology for very
/// high fanout).
fn mst_edges(pts: &[Point]) -> Vec<(usize, usize)> {
    let n = pts.len();
    if n <= 1 {
        return Vec::new();
    }
    if n > 96 {
        return (1..n).map(|i| (0, i)).collect();
    }
    let mut in_tree = vec![false; n];
    let mut dist = vec![i64::MAX; n];
    let mut parent = vec![0usize; n];
    in_tree[0] = true;
    for i in 1..n {
        dist[i] = pts[0].manhattan(pts[i]);
    }
    let mut edges = Vec::with_capacity(n - 1);
    for _ in 1..n {
        let (next, _) = dist
            .iter()
            .enumerate()
            .filter(|(i, _)| !in_tree[*i])
            .min_by_key(|(_, &d)| d)
            .expect("vertices remain");
        in_tree[next] = true;
        edges.push((parent[next], next));
        for i in 0..n {
            if !in_tree[i] {
                let d = pts[next].manhattan(pts[i]);
                if d < dist[i] {
                    dist[i] = d;
                    parent[i] = next;
                }
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::{BenchScale, Benchmark};
    use m3d_place::Placer;
    use m3d_tech::DesignStyle;

    fn routed(style: DesignStyle) -> (TechNode, CellLibrary, Netlist, RoutedDesign) {
        let node = TechNode::n45();
        let lib = CellLibrary::build(&node, style);
        let n = Benchmark::Aes.generate(&lib, BenchScale::Small);
        let p = Placer::new(&lib).place(&n);
        let stack = MetalStack::new(&node, style.default_stack());
        let r = Router::new(&node, &stack).route(&n, &p, &lib);
        (node, lib, n, r)
    }

    #[test]
    fn mst_spans_all_points() {
        let pts = vec![
            Point::new(0, 0),
            Point::new(100, 0),
            Point::new(0, 100),
            Point::new(300, 300),
        ];
        let edges = mst_edges(&pts);
        assert_eq!(edges.len(), 3);
        let total: i64 = edges.iter().map(|&(a, b)| pts[a].manhattan(pts[b])).sum();
        // MST here: 100 + 100 + 500.
        assert_eq!(total, 700);
    }

    #[test]
    fn routed_wirelength_exceeds_hpwl_slightly() {
        let (_, _, n, r) = routed(DesignStyle::TwoD);
        let lib = CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD);
        let p = Placer::new(&lib).place(&n);
        let hpwl = p.total_hpwl_um(&n);
        let wl = r.total_wirelength_um();
        assert!(wl > hpwl, "routed {wl} vs hpwl {hpwl}");
        assert!(wl < 2.5 * hpwl, "routed {wl} vs hpwl {hpwl}");
    }

    #[test]
    fn short_nets_stay_local_long_nets_go_up() {
        let (_, _, n, r) = routed(DesignStyle::TwoD);
        let mut local_len = 0.0;
        let mut seen_global = false;
        for id in n.net_ids() {
            let rn = r.net(id);
            match rn.trunk_class {
                MetalClass::Local => local_len += rn.wirelength_um,
                MetalClass::Global => seen_global = true,
                _ => {}
            }
        }
        assert!(local_len > 0.0);
        // The clock H-tree uses intermediate layers at minimum.
        assert!(
            seen_global || r.class_wirelength_um(MetalClass::Intermediate) > 0.0,
            "no upper-layer usage at all"
        );
    }

    #[test]
    fn mb1_carries_a_tiny_share_in_tmi() {
        let (_, _, _, r) = routed(DesignStyle::Tmi);
        let mb1 = &r.stack.by_name("MB1").expect("MB1 exists");
        let mb1_len: f64 = r
            .nets
            .iter()
            .flat_map(|n| &n.segments)
            .filter(|(l, _)| *l == mb1.index)
            .map(|(_, len)| len)
            .sum();
        let total = r.total_wirelength_um();
        let share = mb1_len / total;
        // Paper Section 3.3: ~0.3 % of total wirelength on MB1.
        assert!(share > 0.0 && share < 0.01, "MB1 share {share}");
    }

    #[test]
    fn clock_route_scales_with_sink_count() {
        let (_, _, n, r) = routed(DesignStyle::TwoD);
        let clock = n.clock.expect("sequential design");
        let sinks = n.net(clock).sinks.len();
        assert!(sinks > 10);
        assert!(r.net(clock).wirelength_um > 0.0);
    }
}
