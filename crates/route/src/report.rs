use serde::{Deserialize, Serialize};

use m3d_tech::MetalClass;

use crate::RoutedDesign;

/// Per-class metal usage summary — the data behind the paper's Fig. 10
/// (local/intermediate/global usage snapshots) and the MB1-share claim of
/// Section 3.3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerUsage {
    /// Wirelength on M1/MB1 pin-access metal, µm.
    pub m1_um: f64,
    /// Wirelength on local layers, µm.
    pub local_um: f64,
    /// Wirelength on intermediate layers, µm.
    pub intermediate_um: f64,
    /// Wirelength on global layers, µm.
    pub global_um: f64,
    /// Peak demand/capacity per class (local, intermediate, global).
    pub peak_utilization: [f64; 3],
    /// Mean demand/capacity over used bins per class.
    pub mean_utilization: [f64; 3],
    /// Fraction of used (class, bin) pairs over capacity.
    pub overflow_ratio: f64,
}

impl LayerUsage {
    /// Gathers the usage report from a routed design.
    pub fn of(routed: &RoutedDesign) -> Self {
        LayerUsage {
            m1_um: routed.class_wirelength_um(MetalClass::M1),
            local_um: routed.class_wirelength_um(MetalClass::Local),
            intermediate_um: routed.class_wirelength_um(MetalClass::Intermediate),
            global_um: routed.class_wirelength_um(MetalClass::Global),
            peak_utilization: [
                routed.grid.peak_utilization(MetalClass::Local),
                routed.grid.peak_utilization(MetalClass::Intermediate),
                routed.grid.peak_utilization(MetalClass::Global),
            ],
            mean_utilization: [
                routed.grid.mean_utilization(MetalClass::Local),
                routed.grid.mean_utilization(MetalClass::Intermediate),
                routed.grid.mean_utilization(MetalClass::Global),
            ],
            overflow_ratio: routed.grid.overflow_ratio(),
        }
    }

    /// Total wirelength, µm.
    pub fn total_um(&self) -> f64 {
        self.m1_um + self.local_um + self.intermediate_um + self.global_um
    }

    /// Formats the usage as the table rows the paper's figures show.
    pub fn to_table(&self) -> String {
        let t = self.total_um().max(1e-12);
        format!(
            "layer class    length(um)   share   peak-util mean-util\n\
             M1/MB1       {:12.1}  {:6.2}%\n\
             local        {:12.1}  {:6.2}%  {:8.2}  {:8.2}\n\
             intermediate {:12.1}  {:6.2}%  {:8.2}  {:8.2}\n\
             global       {:12.1}  {:6.2}%  {:8.2}  {:8.2}\n\
             overflow ratio: {:.3}",
            self.m1_um,
            100.0 * self.m1_um / t,
            self.local_um,
            100.0 * self.local_um / t,
            self.peak_utilization[0],
            self.mean_utilization[0],
            self.intermediate_um,
            100.0 * self.intermediate_um / t,
            self.peak_utilization[1],
            self.mean_utilization[1],
            self.global_um,
            100.0 * self.global_um / t,
            self.peak_utilization[2],
            self.mean_utilization[2],
            self.overflow_ratio,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_cells::CellLibrary;
    use m3d_netlist::{BenchScale, Benchmark};
    use m3d_place::Placer;
    use m3d_tech::{DesignStyle, MetalStack, StackKind, TechNode};

    #[test]
    fn usage_sums_to_total() {
        let node = TechNode::n45();
        let lib = CellLibrary::build(&node, DesignStyle::TwoD);
        let n = Benchmark::Des.generate(&lib, BenchScale::Small);
        let p = Placer::new(&lib).place(&n);
        let stack = MetalStack::new(&node, StackKind::TwoD);
        let r = crate::Router::new(&node, &stack).route(&n, &p, &lib);
        let usage = LayerUsage::of(&r);
        assert!((usage.total_um() - r.total_wirelength_um()).abs() < 1e-6);
        let table = usage.to_table();
        assert!(table.contains("local"));
        assert!(table.contains("overflow"));
    }
}
