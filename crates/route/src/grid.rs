use serde::{Deserialize, Serialize};

use m3d_geom::{Point, Rect};
use m3d_tech::{MetalClass, MetalStack};

/// Routing-demand bookkeeping: a G×G bin grid with per-class track demand
/// and capacity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CongestionGrid {
    g: usize,
    core: Rect,
    bin_w: f64,
    bin_h: f64,
    /// `demand[class][bin]` in track·µm units.
    demand: [Vec<f64>; 3],
    /// Per-bin capacity per class, track·µm.
    capacity: [f64; 3],
}

/// The three routable classes above M1 map to slots 0..3.
pub(crate) fn class_slot(class: MetalClass) -> Option<usize> {
    match class {
        MetalClass::M1 => None,
        MetalClass::Local => Some(0),
        MetalClass::Intermediate => Some(1),
        MetalClass::Global => Some(2),
    }
}

pub(crate) fn slot_class(slot: usize) -> MetalClass {
    match slot {
        0 => MetalClass::Local,
        1 => MetalClass::Intermediate,
        _ => MetalClass::Global,
    }
}

impl CongestionGrid {
    /// Creates a grid over `core` with per-class capacities derived from
    /// the stack's track supply.
    pub fn new(core: Rect, stack: &MetalStack) -> Self {
        let longest = core.width().max(core.height()) as f64 * 1e-3; // µm
        let g = ((longest / 25.0) as usize).clamp(8, 128);
        let bin_w = core.width() as f64 / g as f64;
        let bin_h = core.height() as f64 / g as f64;
        let mut capacity = [0.0; 3];
        for (slot, cap) in capacity.iter_mut().enumerate() {
            let supply = stack.track_supply_per_um(slot_class(slot));
            // Tracks crossing a bin (supply/µm x bin width) times the
            // usable length each track offers inside the bin, with a 20 %
            // margin for power/clock pre-routes. Layers already alternate
            // directions, so no further split is needed. Unit: track·µm
            // of demand the bin can absorb.
            *cap = supply * (bin_w * 1e-3) * (bin_h * 1e-3) * 0.8;
        }
        CongestionGrid {
            g,
            core,
            bin_w,
            bin_h,
            demand: [vec![0.0; g * g], vec![0.0; g * g], vec![0.0; g * g]],
            capacity,
        }
    }

    /// Grid dimension.
    pub fn dim(&self) -> usize {
        self.g
    }

    fn bin_of(&self, p: Point) -> (usize, usize) {
        let x = (((p.x - self.core.lo().x) as f64 / self.bin_w) as usize).min(self.g - 1);
        let y = (((p.y - self.core.lo().y) as f64 / self.bin_h) as usize).min(self.g - 1);
        (x, y)
    }

    /// Bins along the L-shaped path `a -> corner -> b`, where the corner is
    /// `(b.x, a.y)` when `horizontal_first` else `(a.x, b.y)`.
    pub(crate) fn l_path_bins(&self, a: Point, b: Point, horizontal_first: bool) -> Vec<usize> {
        let corner = if horizontal_first {
            Point::new(b.x, a.y)
        } else {
            Point::new(a.x, b.y)
        };
        let mut bins = Vec::new();
        for (p, q) in [(a, corner), (corner, b)] {
            let (x0, y0) = self.bin_of(p);
            let (x1, y1) = self.bin_of(q);
            if y0 == y1 {
                for x in x0.min(x1)..=x0.max(x1) {
                    bins.push(y0 * self.g + x);
                }
            } else {
                for y in y0.min(y1)..=y0.max(y1) {
                    bins.push(y * self.g + x0);
                }
            }
        }
        bins.dedup();
        bins
    }

    /// Worst demand/capacity ratio along a bin path for a class slot.
    pub(crate) fn path_congestion(&self, bins: &[usize], slot: usize) -> f64 {
        bins.iter()
            .map(|&b| self.demand[slot][b] / self.capacity[slot])
            .fold(0.0, f64::max)
    }

    /// Adds `track_um` of demand to each bin on the path.
    pub(crate) fn commit(&mut self, bins: &[usize], slot: usize, track_um_per_bin: f64) {
        for &b in bins {
            self.demand[slot][b] += track_um_per_bin;
        }
    }

    /// Maze fallback: cheapest rectilinear bin path from `a` to `b` for a
    /// class slot, where each bin costs `1 + 4·max(0, overflow)`. Returns
    /// the bin path and its length in bins. Used when both L-shapes of an
    /// edge are congested; the detour trades length for track supply.
    pub(crate) fn maze_path(&self, a: Point, b: Point, slot: usize) -> Vec<usize> {
        let (ax, ay) = self.bin_of(a);
        let (bx, by) = self.bin_of(b);
        let g = self.g;
        let idx = |x: usize, y: usize| y * g + x;
        let start = idx(ax, ay);
        let goal = idx(bx, by);
        let mut dist = vec![f64::INFINITY; g * g];
        let mut prev = vec![usize::MAX; g * g];
        // Dijkstra over the small grid (g <= 128 -> 16k nodes).
        let mut heap = std::collections::BinaryHeap::new();
        #[derive(PartialEq)]
        struct Item(f64, usize);
        impl Eq for Item {}
        impl Ord for Item {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other.0.partial_cmp(&self.0).expect("finite costs")
            }
        }
        impl PartialOrd for Item {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        dist[start] = 0.0;
        heap.push(Item(0.0, start));
        while let Some(Item(d, u)) = heap.pop() {
            if u == goal {
                break;
            }
            if d > dist[u] {
                continue;
            }
            let (ux, uy) = (u % g, u / g);
            let neighbours = [
                (ux.wrapping_sub(1), uy),
                (ux + 1, uy),
                (ux, uy.wrapping_sub(1)),
                (ux, uy + 1),
            ];
            for (nx, ny) in neighbours {
                if nx >= g || ny >= g {
                    continue;
                }
                let v = idx(nx, ny);
                let overflow = (self.demand[slot][v] / self.capacity[slot] - 1.0).max(0.0);
                let cost = d + 1.0 + 4.0 * overflow;
                if cost < dist[v] {
                    dist[v] = cost;
                    prev[v] = u;
                    heap.push(Item(cost, v));
                }
            }
        }
        // Reconstruct.
        let mut path = vec![goal];
        let mut cur = goal;
        while cur != start && prev[cur] != usize::MAX {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// Fraction of (class, bin) pairs whose demand exceeds capacity.
    pub fn overflow_ratio(&self) -> f64 {
        let mut over = 0usize;
        let mut used = 0usize;
        for slot in 0..3 {
            for &d in &self.demand[slot] {
                if d > 0.0 {
                    used += 1;
                    if d > self.capacity[slot] {
                        over += 1;
                    }
                }
            }
        }
        if used == 0 {
            0.0
        } else {
            over as f64 / used as f64
        }
    }

    /// Peak demand/capacity ratio for a class.
    pub fn peak_utilization(&self, class: MetalClass) -> f64 {
        let Some(slot) = class_slot(class) else {
            return 0.0;
        };
        self.demand[slot]
            .iter()
            .map(|&d| d / self.capacity[slot])
            .fold(0.0, f64::max)
    }

    /// Mean demand/capacity over non-empty bins for a class.
    pub fn mean_utilization(&self, class: MetalClass) -> f64 {
        let Some(slot) = class_slot(class) else {
            return 0.0;
        };
        let non_empty: Vec<f64> = self.demand[slot]
            .iter()
            .filter(|&&d| d > 0.0)
            .map(|&d| d / self.capacity[slot])
            .collect();
        if non_empty.is_empty() {
            0.0
        } else {
            non_empty.iter().sum::<f64>() / non_empty.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_tech::{StackKind, TechNode};

    fn grid() -> CongestionGrid {
        let node = TechNode::n45();
        let stack = MetalStack::new(&node, StackKind::TwoD);
        CongestionGrid::new(Rect::from_size(Point::ORIGIN, 400_000, 400_000), &stack)
    }

    #[test]
    fn l_paths_cover_both_legs() {
        let g = grid();
        let a = Point::new(10_000, 10_000);
        let b = Point::new(200_000, 300_000);
        let h = g.l_path_bins(a, b, true);
        let v = g.l_path_bins(a, b, false);
        assert!(h.len() > 2 && v.len() > 2);
        assert_ne!(h, v, "the two L options differ");
    }

    #[test]
    fn commit_raises_congestion() {
        let mut g = grid();
        let a = Point::new(10_000, 10_000);
        let b = Point::new(200_000, 10_000);
        let bins = g.l_path_bins(a, b, true);
        assert_eq!(g.path_congestion(&bins, 0), 0.0);
        g.commit(&bins, 0, 5.0);
        assert!(g.path_congestion(&bins, 0) > 0.0);
        assert_eq!(g.path_congestion(&bins, 1), 0.0, "other classes untouched");
    }

    #[test]
    fn tmi_stack_has_more_local_capacity() {
        let node = TechNode::n45();
        let core = Rect::from_size(Point::ORIGIN, 400_000, 400_000);
        let g2 = CongestionGrid::new(core, &MetalStack::new(&node, StackKind::TwoD));
        let g3 = CongestionGrid::new(core, &MetalStack::new(&node, StackKind::Tmi));
        assert!(g3.capacity[0] > 2.0 * g2.capacity[0]);
        assert!((g3.capacity[2] - g2.capacity[2]).abs() < 1e-9);
    }

    #[test]
    fn maze_path_connects_and_detours_around_overflow() {
        let mut g = grid();
        let a = Point::new(10_000, 10_000);
        let b = Point::new(390_000, 10_000);
        // Without congestion the maze walks the straight row.
        let clean = g.maze_path(a, b, 0);
        assert!(!clean.is_empty());
        let straight_len = clean.len();
        // Saturate the straight row between the endpoints.
        let bins = g.l_path_bins(a, b, true);
        g.commit(&bins, 0, g.capacity[0] * 5.0);
        let detour = g.maze_path(a, b, 0);
        assert!(
            detour.len() > straight_len,
            "maze should leave the saturated row ({} !> {})",
            detour.len(),
            straight_len
        );
    }

    #[test]
    fn overflow_ratio_counts_saturated_bins() {
        let mut g = grid();
        let a = Point::new(10_000, 10_000);
        let b = Point::new(30_000, 10_000);
        let bins = g.l_path_bins(a, b, true);
        g.commit(&bins, 2, g.capacity[2] * 2.0);
        assert!(g.overflow_ratio() > 0.0);
    }
}
