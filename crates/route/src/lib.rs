//! Congestion-aware global routing for the `monolith3d` flow.
//!
//! The router performs the layout steps the paper runs in Encounter
//! (Section 2): multi-pin nets are decomposed into two-pin connections
//! (Prim MST over the placed pins), each connection is assigned to a
//! metal-layer *class* by its length, routed as the less-congested of the
//! two L-shapes over a global bin grid, and spilled to a neighbouring
//! class when its own class is full along the path.
//!
//! The class-capacity model is where the T-MI stack trade-offs live:
//!
//! * T-MI adds **local** layers only (Table 3), so its local capacity is
//!   2.5× the 2D stack's — absorbing the ~2x pin-density increase of the
//!   folded cells.
//! * The intermediate/global track *count* is unchanged while the die
//!   shrinks ~42 %, so long-net capacity is tighter in T-MI; at 7 nm,
//!   where local wires are extremely resistive, nets demoted to local
//!   layers get slower — the mechanism behind the paper's smaller LDPC
//!   benefit at 7 nm (Section 6).
//!
//! # Example
//!
//! ```
//! use m3d_cells::CellLibrary;
//! use m3d_netlist::{BenchScale, Benchmark};
//! use m3d_place::Placer;
//! use m3d_route::Router;
//! use m3d_tech::{DesignStyle, MetalStack, StackKind, TechNode};
//!
//! let node = TechNode::n45();
//! let lib = CellLibrary::build(&node, DesignStyle::TwoD);
//! let netlist = Benchmark::Aes.generate(&lib, BenchScale::Small);
//! let placement = Placer::new(&lib).place(&netlist);
//! let stack = MetalStack::new(&node, StackKind::TwoD);
//! let routed = Router::new(&node, &stack).route(&netlist, &placement, &lib);
//! assert!(routed.total_wirelength_um() > 0.0);
//! ```

pub mod cts;
mod grid;
mod report;
mod router;

pub use grid::CongestionGrid;
pub use report::LayerUsage;
pub use router::{RouteError, RoutedDesign, RoutedNet, Router};
