//! Static timing analysis for the `monolith3d` flow.
//!
//! Graph-based STA in the sign-off style the paper requires ("timing is
//! closed on all designs", Section 1):
//!
//! * forward propagation of arrival times and slews in topological order,
//!   cell arcs evaluated through the library NLDM tables,
//! * net delays from the lumped Elmore model
//!   `R_wire · (C_wire/2 + C_pins)` over extracted parasitics,
//! * slew degradation across resistive nets,
//! * launch from flop CK→Q, capture at flop D with setup, plus primary
//!   I/O endpoints — yielding WNS/TNS against a target clock period.
//!
//! [`opt`] turns a timing report into concrete optimization moves (gate
//! sizing up/down, repeater insertion) that the flow driver applies and
//! re-extracts — the pre-route and post-route optimization steps of the
//! paper's Fig. 1.
//!
//! # Example
//!
//! ```
//! use m3d_cells::{CellFunction, CellLibrary};
//! use m3d_netlist::NetlistBuilder;
//! use m3d_sta::{analyze, NetModel, TimingConfig};
//! use m3d_tech::{DesignStyle, TechNode};
//!
//! let lib = CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD);
//! let mut b = NetlistBuilder::new(&lib, "t");
//! let x = b.input();
//! let y = b.gate(CellFunction::Inv, &[x]);
//! let q = b.dff(y);
//! b.output(q);
//! let n = b.finish();
//! let models = vec![NetModel::default(); n.net_count()];
//! let report = analyze(&n, &lib, &models, &TimingConfig::new(1000.0));
//! assert!(report.wns > 0.0, "a single inverter meets 1 ns easily");
//! ```

mod engine;
pub mod opt;
mod report;

pub use engine::{analyze, try_analyze, NetModel, StaError, TimingConfig};
pub use opt::{plan_load_sizing, plan_power_recovery, plan_timing_moves, OptMove};
pub use report::{PathHop, TimingReport};
