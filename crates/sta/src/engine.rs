use serde::{Deserialize, Serialize};

use m3d_cells::CellLibrary;
use m3d_netlist::{levelize, Netlist};

use crate::TimingReport;

/// Lumped electrical model of one net, fed from extraction (post-route)
/// or a wire-load estimate (pre-route).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NetModel {
    /// Wire capacitance, fF.
    pub c_wire: f64,
    /// Wire resistance driver-to-sinks, kΩ.
    pub r_wire: f64,
}

/// Analysis constraints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingConfig {
    /// Target clock period, ps.
    pub clock_period_ps: f64,
    /// Slew assumed at primary inputs, ps.
    pub input_slew_ps: f64,
    /// Timing budget reserved at primary I/O (ps) — models the external
    /// environment.
    pub io_margin_ps: f64,
}

impl TimingConfig {
    /// Config for a clock period with default I/O assumptions.
    pub fn new(clock_period_ps: f64) -> Self {
        TimingConfig {
            clock_period_ps,
            input_slew_ps: 20.0,
            io_margin_ps: 0.0,
        }
    }
}

/// Timing-analysis failure.
#[derive(Debug, Clone, PartialEq)]
pub enum StaError {
    /// `models` was shorter than the net count (one [`NetModel`] per net
    /// is required).
    ModelCountMismatch {
        /// Nets in the design.
        nets: usize,
        /// Models supplied.
        models: usize,
    },
    /// The netlist contains a combinational cycle, so no topological
    /// order — and no arrival times — exist.
    CombinationalCycle {
        /// Number of instances trapped in cyclic regions.
        involved: usize,
    },
}

impl std::fmt::Display for StaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StaError::ModelCountMismatch { nets, models } => write!(
                f,
                "timing needs one net model per net: {nets} nets but {models} models"
            ),
            StaError::CombinationalCycle { involved } => write!(
                f,
                "combinational cycle: {involved} instances have no topological order"
            ),
        }
    }
}

impl std::error::Error for StaError {}

/// Runs static timing analysis.
///
/// `models` must be indexed by `NetId` (one entry per net).
///
/// # Panics
///
/// Panics if `models` is shorter than the net count or the netlist has a
/// combinational cycle; see [`try_analyze`] for the fallible form used
/// by the supervised flow.
pub fn analyze(
    netlist: &Netlist,
    lib: &CellLibrary,
    models: &[NetModel],
    config: &TimingConfig,
) -> TimingReport {
    match try_analyze(netlist, lib, models, config) {
        Ok(report) => report,
        Err(e) => panic!("timing analysis failed: {e}"),
    }
}

/// Fallible form of [`analyze`].
///
/// # Errors
///
/// Returns [`StaError`] on a model-count mismatch or a combinational
/// cycle.
pub fn try_analyze(
    netlist: &Netlist,
    lib: &CellLibrary,
    models: &[NetModel],
    config: &TimingConfig,
) -> Result<TimingReport, StaError> {
    if models.len() < netlist.net_count() {
        return Err(StaError::ModelCountMismatch {
            nets: netlist.net_count(),
            models: models.len(),
        });
    }
    let (_, order) = levelize(netlist, lib).map_err(|cycle| StaError::CombinationalCycle {
        involved: cycle.len(),
    })?;

    let n_nets = netlist.net_count();
    let mut arrival = vec![0.0f64; n_nets];
    let mut min_arrival = vec![0.0f64; n_nets];
    let mut slew = vec![config.input_slew_ps; n_nets];
    let mut driver_of = vec![None; n_nets];
    for id in netlist.inst_ids() {
        let inst = netlist.inst(id);
        let n_in = lib.cell(inst.cell).input_count();
        for (o, &net) in inst.pins[n_in..].iter().enumerate() {
            driver_of[net.0 as usize] = Some((id, o as u8));
        }
    }

    // Primary inputs start at the I/O margin.
    for &pi in &netlist.primary_inputs {
        arrival[pi.0 as usize] = config.io_margin_ps;
    }

    // Effective load on a net: wire plus sink pin caps.
    let load_of = |net: m3d_netlist::NetId| -> f64 {
        models[net.0 as usize].c_wire + netlist.net_pin_cap(net, lib)
    };

    // Process instances in topological order (flops first, then combs).
    for &inst_id in &order {
        let inst = netlist.inst(inst_id);
        let cell = lib.cell(inst.cell);
        let n_in = cell.input_count();
        let seq = cell.function.is_sequential();

        // Worst input arrival/slew. A flop launches from the clock pin
        // instead of D.
        let (arr_in, slew_in) = if seq {
            let ck = inst.pins[1];
            (arrival[ck.0 as usize], slew[ck.0 as usize].max(10.0))
        } else {
            let mut a = f64::NEG_INFINITY;
            let mut s = 0.0f64;
            for p in 0..n_in {
                let net = inst.pins[p];
                let na = arrival[net.0 as usize];
                if na > a {
                    a = na;
                }
                s = s.max(slew[net.0 as usize]);
            }
            (a.max(0.0), s)
        };

        for (o, &out_net) in inst.pins[n_in..].iter().enumerate() {
            let _ = o;
            let load = load_of(out_net);
            let gate_delay = cell.delay.lookup(slew_in, load);
            let m = models[out_net.0 as usize];
            // Lumped Elmore from driver through the wire into the pins.
            let net_delay = m.r_wire * (0.5 * m.c_wire + netlist.net_pin_cap(out_net, lib));
            let launch = if seq {
                arrival[inst.pins[1].0 as usize]
            } else {
                arr_in
            };
            let a_out = launch + gate_delay + net_delay;
            let out_idx = out_net.0 as usize;
            if a_out > arrival[out_idx] {
                arrival[out_idx] = a_out;
            }
            // Fastest (hold) arrival: the earliest input through the same
            // arc; sequential launches restart at CK.
            let min_in = if seq {
                min_arrival[inst.pins[1].0 as usize]
            } else {
                (0..n_in)
                    .map(|p| min_arrival[inst.pins[p].0 as usize])
                    .fold(f64::INFINITY, f64::min)
                    .max(0.0)
            };
            let min_out = min_in + gate_delay + net_delay;
            if min_arrival[out_idx] == 0.0 || min_out < min_arrival[out_idx] {
                min_arrival[out_idx] = min_out;
            }
            // Output slew, degraded across the wire RC.
            let s_drv = cell.out_slew.lookup(slew_in, load);
            let wire_tau = 2.2 * m.r_wire * (0.5 * m.c_wire + netlist.net_pin_cap(out_net, lib));
            slew[out_idx] = (s_drv * s_drv + wire_tau * wire_tau).sqrt();
        }
    }

    // Endpoints: flop D pins (with setup) and primary outputs.
    let t = config.clock_period_ps;
    let mut wns = f64::INFINITY;
    let mut hold_wns = f64::INFINITY;
    let mut tns = 0.0;
    let mut endpoint_count = 0usize;
    let mut worst_endpoint = None;
    let mut slack_at_net = vec![f64::INFINITY; n_nets];
    for id in netlist.inst_ids() {
        let inst = netlist.inst(id);
        let cell = lib.cell(inst.cell);
        if !cell.function.is_sequential() {
            continue;
        }
        let d_net = inst.pins[0];
        let setup = cell.seq.map(|s| s.setup_ps).unwrap_or(0.0);
        let hold = cell.seq.map(|s| s.hold_ps).unwrap_or(0.0);
        // Same-edge hold check: the fastest new data must not outrun the
        // capture of the previous value. Port-driven D pins are excluded
        // (external input timing is not modeled).
        if matches!(
            netlist.net(d_net).driver,
            m3d_netlist::NetDriver::Cell { .. }
        ) {
            hold_wns = hold_wns.min(min_arrival[d_net.0 as usize] - hold);
        }
        let slack = t - setup - arrival[d_net.0 as usize];
        slack_at_net[d_net.0 as usize] = slack_at_net[d_net.0 as usize].min(slack);
        endpoint_count += 1;
        if slack < wns {
            wns = slack;
            worst_endpoint = Some(d_net);
        }
        if slack < 0.0 {
            tns += slack;
        }
    }
    for &po in &netlist.primary_outputs {
        let slack = t - config.io_margin_ps - arrival[po.0 as usize];
        slack_at_net[po.0 as usize] = slack_at_net[po.0 as usize].min(slack);
        endpoint_count += 1;
        if slack < wns {
            wns = slack;
            worst_endpoint = Some(po);
        }
        if slack < 0.0 {
            tns += slack;
        }
    }
    if endpoint_count == 0 {
        wns = t;
    }
    if !hold_wns.is_finite() {
        hold_wns = 0.0;
    }

    // Backward required-time propagation for per-net slack (approximate:
    // propagate the endpoint slack back along worst arrival chains).
    // For optimization purposes the endpoint-slack map plus arrival is
    // sufficient; compute per-net slack as min over downstream endpoints
    // reached through a reverse sweep.
    let mut slack = slack_at_net;
    for &inst_id in order.iter().rev() {
        let inst = netlist.inst(inst_id);
        let cell = lib.cell(inst.cell);
        if cell.function.is_sequential() {
            continue; // D endpoints already seeded; Q starts fresh paths
        }
        let n_in = cell.input_count();
        let mut out_slack = f64::INFINITY;
        for &out_net in &inst.pins[n_in..] {
            out_slack = out_slack.min(slack[out_net.0 as usize]);
        }
        for p in 0..n_in {
            let net = inst.pins[p].0 as usize;
            slack[net] = slack[net].min(out_slack);
        }
    }

    Ok(TimingReport {
        arrival,
        slew,
        slack,
        wns,
        hold_wns,
        tns,
        clock_period_ps: t,
        worst_endpoint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_cells::CellFunction;
    use m3d_netlist::NetlistBuilder;
    use m3d_tech::{DesignStyle, TechNode};

    fn lib() -> CellLibrary {
        CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD)
    }

    fn chain(lib: &CellLibrary, k: usize) -> Netlist {
        let mut b = NetlistBuilder::new(lib, "chain");
        let mut x = b.input();
        x = b.dff(x);
        for _ in 0..k {
            x = b.gate(CellFunction::Inv, &[x]);
        }
        let q = b.dff(x);
        b.output(q);
        b.finish()
    }

    #[test]
    fn longer_chains_have_less_slack() {
        let lib = lib();
        let models = |n: &Netlist| vec![NetModel::default(); n.net_count()];
        let short = chain(&lib, 2);
        let long = chain(&lib, 20);
        let cfg = TimingConfig::new(1000.0);
        let r_short = analyze(&short, &lib, &models(&short), &cfg);
        let r_long = analyze(&long, &lib, &models(&long), &cfg);
        assert!(r_long.wns < r_short.wns);
    }

    #[test]
    fn wire_resistance_adds_delay() {
        let lib = lib();
        let n = chain(&lib, 4);
        let cfg = TimingConfig::new(1000.0);
        let ideal = analyze(&n, &lib, &vec![NetModel::default(); n.net_count()], &cfg);
        let heavy = analyze(
            &n,
            &lib,
            &vec![
                NetModel {
                    c_wire: 20.0,
                    r_wire: 2.0,
                };
                n.net_count()
            ],
            &cfg,
        );
        assert!(heavy.wns < ideal.wns - 100.0, "wire RC must matter");
    }

    #[test]
    fn violating_clock_gives_negative_wns_and_tns() {
        let lib = lib();
        let n = chain(&lib, 40);
        let cfg = TimingConfig::new(100.0); // far too fast
        let r = analyze(&n, &lib, &vec![NetModel::default(); n.net_count()], &cfg);
        assert!(r.wns < 0.0);
        assert!(r.tns <= r.wns);
        assert!(r.worst_endpoint.is_some());
    }

    #[test]
    fn slew_degrades_over_resistive_nets() {
        let lib = lib();
        let n = chain(&lib, 1);
        let cfg = TimingConfig::new(1000.0);
        let ideal = analyze(&n, &lib, &vec![NetModel::default(); n.net_count()], &cfg);
        let resistive = analyze(
            &n,
            &lib,
            &vec![
                NetModel {
                    c_wire: 30.0,
                    r_wire: 3.0,
                };
                n.net_count()
            ],
            &cfg,
        );
        let max_slew_ideal = ideal.slew.iter().cloned().fold(0.0, f64::max);
        let max_slew_res = resistive.slew.iter().cloned().fold(0.0, f64::max);
        assert!(max_slew_res > max_slew_ideal);
    }

    #[test]
    fn worst_path_walks_back_to_the_launch_flop() {
        let lib = lib();
        let n = chain(&lib, 5);
        let cfg = TimingConfig::new(100.0);
        let r = analyze(&n, &lib, &vec![NetModel::default(); n.net_count()], &cfg);
        let path = r.worst_path(&n, &lib);
        // Endpoint (D of the capture flop) back through 5 inverters to
        // the launch flop's Q: 6 hops.
        assert_eq!(path.len(), 6, "{path:#?}");
        assert!(path[0].driver.starts_with("INV"));
        assert!(path.last().expect("non-empty").driver.starts_with("DFF"));
        // Arrivals decrease walking backwards.
        for pair in path.windows(2) {
            assert!(pair[0].arrival_ps >= pair[1].arrival_ps);
        }
    }

    #[test]
    fn hold_is_met_when_logic_outweighs_hold_time() {
        let lib = lib();
        let n = chain(&lib, 3);
        let cfg = TimingConfig::new(1000.0);
        let r = analyze(&n, &lib, &vec![NetModel::default(); n.net_count()], &cfg);
        // Three inverters of delay dwarf the 2 ps hold requirement.
        assert!(r.hold_wns > 0.0, "hold wns {}", r.hold_wns);
    }

    #[test]
    fn direct_flop_to_flop_path_has_least_hold_margin() {
        let lib = lib();
        let short = chain(&lib, 0); // Q feeds the next D directly
        let long = chain(&lib, 6);
        let cfg = TimingConfig::new(1000.0);
        let models = |n: &Netlist| vec![NetModel::default(); n.net_count()];
        let r_short = analyze(&short, &lib, &models(&short), &cfg);
        let r_long = analyze(&long, &lib, &models(&long), &cfg);
        assert!(
            r_short.hold_wns < r_long.hold_wns,
            "short {} long {}",
            r_short.hold_wns,
            r_long.hold_wns
        );
    }

    #[test]
    fn per_net_slack_decreases_upstream_of_violations() {
        let lib = lib();
        let n = chain(&lib, 30);
        let cfg = TimingConfig::new(200.0);
        let r = analyze(&n, &lib, &vec![NetModel::default(); n.net_count()], &cfg);
        // Every net on the single chain shares the endpoint slack.
        let negative: usize = r.slack.iter().filter(|&&s| s < 0.0).count();
        assert!(negative > 25, "violation should cover the chain");
    }
}
