//! Timing-optimization planning: turns a [`TimingReport`] into gate-sizing
//! and repeater-insertion moves.
//!
//! The planner implements the two levers the paper's optimizer uses
//! (Sections 4.1, 4.4): on failing paths it *upsizes* drivers and chops
//! long resistive nets with repeaters; once timing is met it *downsizes*
//! cells with comfortable slack to recover power ("with a better timing,
//! cells are downsized and less number of buffers are used").

use serde::{Deserialize, Serialize};

use m3d_cells::{CellFunction, CellLibrary};
use m3d_netlist::{NetDriver, NetId, Netlist};

use crate::{NetModel, TimingReport};

/// One planned edit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptMove {
    /// Swap the net's driver to the next-stronger variant.
    Upsize(m3d_netlist::InstId),
    /// Swap to the next-weaker variant (power recovery).
    Downsize(m3d_netlist::InstId),
    /// Split the net with `repeaters` buffers along its span.
    BufferNet {
        /// The overloaded net.
        net: NetId,
        /// How many repeaters to insert.
        repeaters: u32,
    },
}

/// Optimal repeater count for a wire with total RC, from the classic
/// repeater-insertion balance: k ~ sqrt(R_wire·C_wire / (R_buf·C_buf)).
fn repeater_count(model: &NetModel, r_buf: f64, c_buf: f64) -> u32 {
    if model.r_wire <= 0.0 || model.c_wire <= 0.0 {
        return 0;
    }
    let k = (model.r_wire * model.c_wire / (r_buf * c_buf)).sqrt();
    (k as u32).min(8)
}

/// Plans timing fixes for up to `limit` critical nets: buffer long nets
/// whose wire RC dominates, upsize drivers otherwise.
///
/// Returns an empty vector when timing is met.
pub fn plan_timing_moves(
    netlist: &Netlist,
    lib: &CellLibrary,
    models: &[NetModel],
    report: &TimingReport,
    limit: usize,
) -> Vec<OptMove> {
    if report.met() {
        return Vec::new();
    }
    let buf = lib.cell(lib.smallest(CellFunction::Buf));
    let (r_buf, c_buf) = (buf.r_drive, buf.max_input_cap());
    let mut moves = Vec::new();
    let mut touched_insts = std::collections::HashSet::new();
    for net in report.critical_nets() {
        if moves.len() >= limit {
            break;
        }
        if Some(net) == netlist.clock {
            continue;
        }
        let m = &models[net.0 as usize];
        let driver = match netlist.net(net).driver {
            NetDriver::Cell { inst, .. } => Some(inst),
            _ => None,
        };
        // Wire-dominated nets get distance repeaters; pin-dominated
        // high-fanout nets get a fanout split (applied iteratively, this
        // grows a buffer tree). Both are the paper's "#buffers".
        let wire_rc = m.r_wire * (0.5 * m.c_wire);
        let stage = r_buf * c_buf;
        let sinks = netlist.net(net).sinks.len();
        if wire_rc > 2.0 * stage {
            let k = repeater_count(m, r_buf, c_buf);
            if k > 0 {
                moves.push(OptMove::BufferNet { net, repeaters: k });
                continue;
            }
        }
        if sinks >= 10 {
            moves.push(OptMove::BufferNet { net, repeaters: 1 });
            continue;
        }
        // Load isolation: a heavy wire on a driver that cannot grow any
        // further is split so each segment carries half the capacitance.
        if let Some(inst) = driver {
            let at_max = lib.upsize(netlist.inst(inst).cell).is_none();
            // Only when the wire charge itself is a large delay (roughly
            // a >200 um run) does splitting pay for the extra stage.
            if at_max && m.c_wire > 25.0 * c_buf {
                moves.push(OptMove::BufferNet { net, repeaters: 1 });
                continue;
            }
        }
        // Otherwise: upsize the driver -- but only when the logical-effort
        // balance favours it: the gain from the stronger drive on this
        // net's load must beat the penalty its larger input pins put on
        // the upstream stage.
        if let Some(inst) = driver {
            if !touched_insts.insert(inst) {
                continue;
            }
            let cur = lib.cell(netlist.inst(inst).cell);
            let Some((_, next)) = lib.upsize(netlist.inst(inst).cell) else {
                continue;
            };
            let load = m.c_wire + netlist.net_pin_cap(net, lib);
            let gain = (cur.r_drive - next.r_drive) * load;
            // Upstream penalty: the worst input net's driver re-drives the
            // extra pin capacitance.
            let mut penalty = 0.0f64;
            for p in 0..cur.input_count() {
                let in_net = netlist.input_net(inst, p as u8);
                let r_up = match netlist.net(in_net).driver {
                    NetDriver::Cell { inst: up, .. } => lib.cell(netlist.inst(up).cell).r_drive,
                    _ => 0.0,
                };
                let d_cap = next.input_cap(p) - cur.input_cap(p);
                penalty = penalty.max(r_up * d_cap);
            }
            if gain > penalty {
                moves.push(OptMove::Upsize(inst));
            }
        }
    }
    moves
}

/// Plans one round of load-based sizing: every driver whose stage delay
/// `r_drive * load` exceeds `tau_ps` steps up one variant; drivers more
/// than 4x faster than the target step down. Called iteratively (loads
/// move as sinks resize), this is the deterministic "map to the load"
/// pass a synthesis tool runs before incremental timing fixes.
pub fn plan_load_sizing(
    netlist: &Netlist,
    lib: &CellLibrary,
    models: &[NetModel],
    tau_ps: f64,
) -> Vec<OptMove> {
    let mut moves = Vec::new();
    for id in netlist.inst_ids() {
        let inst = netlist.inst(id);
        let cell = lib.cell(inst.cell);
        let n_in = cell.input_count();
        let Some(&out) = inst.pins.get(n_in) else {
            continue;
        };
        let load = models[out.0 as usize].c_wire + netlist.net_pin_cap(out, lib);
        let stage = cell.r_drive * load;
        if stage > tau_ps {
            if lib.upsize(inst.cell).is_some() {
                moves.push(OptMove::Upsize(id));
            }
        } else if stage * 4.0 < tau_ps && cell.drive > 1 && !cell.function.is_sequential() {
            moves.push(OptMove::Downsize(id));
        }
    }
    moves
}

/// Plans power recovery: downsizes drivers whose endpoint slack exceeds
/// `slack_margin_ps` (iso-performance power optimization).
pub fn plan_power_recovery(
    netlist: &Netlist,
    lib: &CellLibrary,
    report: &TimingReport,
    slack_margin_ps: f64,
    limit: usize,
) -> Vec<OptMove> {
    if !report.met() {
        return Vec::new();
    }
    // Collect candidates, then keep the `limit` with the biggest payoff:
    // largest drives with the most downstream slack first. Batching small
    // slices lets the caller verify-and-revert incrementally instead of
    // gambling the whole design on one shot.
    let mut candidates: Vec<(m3d_netlist::InstId, u8, f64)> = Vec::new();
    for id in netlist.inst_ids() {
        let inst = netlist.inst(id);
        let cell = lib.cell(inst.cell);
        if cell.drive == 1 || cell.function.is_sequential() {
            continue;
        }
        let n_in = cell.input_count();
        let min_slack = inst.pins[n_in..]
            .iter()
            .map(|&out| report.net_slack(out))
            .fold(f64::INFINITY, f64::min);
        if min_slack > slack_margin_ps {
            candidates.push((id, cell.drive, min_slack));
        }
    }
    candidates.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then(b.2.partial_cmp(&a.2).expect("finite slack"))
    });
    candidates
        .into_iter()
        .take(limit)
        .map(|(id, _, _)| OptMove::Downsize(id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, TimingConfig};
    use m3d_netlist::NetlistBuilder;
    use m3d_tech::{DesignStyle, TechNode};

    fn lib() -> CellLibrary {
        CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD)
    }

    #[test]
    fn met_timing_plans_nothing() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.input();
        let y = b.gate(CellFunction::Inv, &[x]);
        b.output(y);
        let n = b.finish();
        let models = vec![NetModel::default(); n.net_count()];
        let r = analyze(&n, &lib, &models, &TimingConfig::new(10_000.0));
        assert!(plan_timing_moves(&n, &lib, &models, &r, 10).is_empty());
    }

    #[test]
    fn wire_dominated_nets_get_buffers_gate_dominated_get_sizing() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.input();
        let a = b.gate(CellFunction::Inv, &[x]);
        let c = b.gate(CellFunction::Inv, &[a]);
        let q = b.dff(c);
        b.output(q);
        let n = b.finish();
        // Net `a` has monstrous wire RC; others are ideal.
        let mut models = vec![NetModel::default(); n.net_count()];
        models[a.0 as usize] = NetModel {
            c_wire: 200.0,
            r_wire: 10.0,
        };
        let r = analyze(&n, &lib, &models, &TimingConfig::new(300.0));
        assert!(!r.met());
        let moves = plan_timing_moves(&n, &lib, &models, &r, 10);
        assert!(
            moves
                .iter()
                .any(|m| matches!(m, OptMove::BufferNet { net, .. } if *net == a)),
            "expected a repeater plan on the fat net, got {moves:?}"
        );
    }

    #[test]
    fn power_recovery_downsizes_only_relaxed_cells() {
        let lib = lib();
        let mut b = NetlistBuilder::new(&lib, "t");
        let x = b.input();
        let y = b.gate(CellFunction::Inv, &[x]);
        b.output(y);
        let mut n = b.finish();
        // Manually upsize the inverter to X4 first.
        let (x4, _) = lib.id_named("INV_X4").expect("INV_X4");
        n.resize(m3d_netlist::InstId(0), x4, &lib);
        let models = vec![NetModel::default(); n.net_count()];
        let r = analyze(&n, &lib, &models, &TimingConfig::new(10_000.0));
        let moves = plan_power_recovery(&n, &lib, &r, 100.0, 10);
        assert_eq!(moves.len(), 1);
        assert!(matches!(moves[0], OptMove::Downsize(_)));
        // With a tight clock there is no recovery.
        let r_tight = analyze(&n, &lib, &models, &TimingConfig::new(30.0));
        assert!(plan_power_recovery(&n, &lib, &r_tight, 100.0, 10).is_empty());
    }

    #[test]
    fn repeater_count_scales_with_wire_rc() {
        let small = NetModel {
            c_wire: 10.0,
            r_wire: 0.5,
        };
        let big = NetModel {
            c_wire: 400.0,
            r_wire: 8.0,
        };
        let (rb, cb) = (5.0, 1.0);
        assert!(repeater_count(&big, rb, cb) > repeater_count(&small, rb, cb));
        assert_eq!(repeater_count(&NetModel::default(), rb, cb), 0);
    }
}
