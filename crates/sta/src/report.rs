use serde::{Deserialize, Serialize};

use m3d_cells::CellLibrary;
use m3d_netlist::{NetDriver, NetId, Netlist};

/// One hop of a reported timing path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathHop {
    /// Net at this point of the path.
    pub net: NetId,
    /// Library cell name of the driver (`"<port>"` at primary inputs).
    pub driver: String,
    /// Arrival time at the net, ps.
    pub arrival_ps: f64,
    /// Slew at the net, ps.
    pub slew_ps: f64,
}

/// The result of one STA run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimingReport {
    /// Worst arrival time per net, ps.
    pub arrival: Vec<f64>,
    /// Worst slew per net, ps.
    pub slew: Vec<f64>,
    /// Worst downstream endpoint slack per net, ps.
    pub slack: Vec<f64>,
    /// Worst negative slack over all endpoints, ps (positive = met).
    pub wns: f64,
    /// Worst hold slack over all flop endpoints, ps (positive = met;
    /// same-edge check against the cells' hold times).
    pub hold_wns: f64,
    /// Total negative slack, ps.
    pub tns: f64,
    /// The analyzed clock period, ps.
    pub clock_period_ps: f64,
    /// The endpoint net with the worst slack.
    pub worst_endpoint: Option<NetId>,
}

impl TimingReport {
    /// `true` when every endpoint meets the clock.
    pub fn met(&self) -> bool {
        self.wns >= 0.0
    }

    /// Longest path delay (clock period minus WNS), ps.
    pub fn longest_path_ps(&self) -> f64 {
        self.clock_period_ps - self.wns
    }

    /// Slack of a net, ps.
    pub fn net_slack(&self, net: NetId) -> f64 {
        self.slack[net.0 as usize]
    }

    /// Walks the worst path backwards from the worst endpoint: at each
    /// hop, follow the driver's latest-arriving input. Returns the hops
    /// endpoint-first. Empty when the design has no endpoints.
    pub fn worst_path(&self, netlist: &Netlist, lib: &CellLibrary) -> Vec<PathHop> {
        let mut hops = Vec::new();
        let Some(mut net) = self.worst_endpoint else {
            return hops;
        };
        for _ in 0..netlist.instance_count() + 1 {
            let n = netlist.net(net);
            let driver = match n.driver {
                NetDriver::Cell { inst, .. } => lib.cell(netlist.inst(inst).cell).name.clone(),
                NetDriver::Port(_) => "<port>".to_string(),
                NetDriver::None => "<undriven>".to_string(),
            };
            hops.push(PathHop {
                net,
                driver,
                arrival_ps: self.arrival[net.0 as usize],
                slew_ps: self.slew[net.0 as usize],
            });
            let NetDriver::Cell { inst, .. } = n.driver else {
                break;
            };
            let cell = lib.cell(netlist.inst(inst).cell);
            if cell.function.is_sequential() {
                break; // reached the launching flop
            }
            // Latest input wins.
            let mut best: Option<(NetId, f64)> = None;
            for p in 0..cell.input_count() {
                let in_net = netlist.input_net(inst, p as u8);
                let a = self.arrival[in_net.0 as usize];
                if best.map(|(_, b)| a > b).unwrap_or(true) {
                    best = Some((in_net, a));
                }
            }
            match best {
                Some((n2, _)) => net = n2,
                None => break,
            }
        }
        hops
    }

    /// Nets sorted by ascending slack (most critical first), restricted to
    /// negative-slack nets.
    pub fn critical_nets(&self) -> Vec<NetId> {
        let mut v: Vec<(NetId, f64)> = self
            .slack
            .iter()
            .enumerate()
            .filter(|(_, &s)| s < 0.0)
            .map(|(i, &s)| (NetId(i as u32), s))
            .collect();
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite slack"));
        v.into_iter().map(|(n, _)| n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_nets_sorted_most_negative_first() {
        let r = TimingReport {
            arrival: vec![0.0; 4],
            slew: vec![0.0; 4],
            slack: vec![5.0, -20.0, -3.0, 0.0],
            wns: -20.0,
            hold_wns: 3.0,
            tns: -23.0,
            clock_period_ps: 100.0,
            worst_endpoint: Some(NetId(1)),
        };
        assert!(!r.met());
        assert_eq!(r.critical_nets(), vec![NetId(1), NetId(2)]);
        assert_eq!(r.longest_path_ps(), 120.0);
    }
}
