//! The paper's best case: a wire-dominated LDPC decoder.
//!
//! The IEEE 802.3an LDPC decoder's bipartite check/variable graph has no
//! spatial locality, so its nets stay long no matter how well it is
//! placed — the circuit class where T-MI shines (paper Section 4.3,
//! −32 % total power at 45 nm). This example walks the whole story:
//! wire/pin capacitance split, buffer counts, and the final power table.
//!
//! ```text
//! cargo run --release --example ldpc_wire_dominated [-- --paper]
//! ```

use m3d_netlist::{BenchScale, Benchmark};
use m3d_tech::{DesignStyle, NodeId};
use monolith3d::{Flow, FlowConfig};

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let scale = if paper {
        BenchScale::Paper
    } else {
        BenchScale::Small
    };
    let cfg = FlowConfig::new(NodeId::N45).scale(scale);

    println!("LDPC (802.3an min-sum decoder) @ 45 nm\n");
    let mut results = Vec::new();
    for style in [DesignStyle::TwoD, DesignStyle::Tmi] {
        let r = Flow::new(Benchmark::Ldpc, style, cfg.clone()).run();
        println!(
            "{}: core {:6.0}x{:6.0} um at {:4.1}% util | WL {:6.3} m | {} buffers | WNS {:+5.0} ps",
            style.label(),
            r.core_um.0,
            r.core_um.1,
            r.utilization * 100.0,
            r.wirelength_m(),
            r.buffer_count,
            r.wns_ps
        );
        println!(
            "    capacitance: wire {:7.1} pF vs pin {:7.1} pF  ({})",
            r.power.wire_cap_pf,
            r.power.pin_cap_pf,
            if r.power.wire_cap_pf > r.power.pin_cap_pf {
                "wire-dominated -> big T-MI upside"
            } else {
                "pin-dominated"
            }
        );
        println!(
            "    power: total {:7.2} mW = cell {:6.2} + wire {:6.2} + pin {:6.2} + leak {:5.3}\n",
            r.total_power_mw(),
            r.power.cell_mw,
            r.power.wire_mw,
            r.power.pin_mw,
            r.power.leakage_mw
        );
        results.push(r);
    }
    let (d2, d3) = (&results[0], &results[1]);
    println!(
        "T-MI deltas: wirelength {:+.1}%, buffers {:+.1}%, total power {:+.1}%",
        (d3.wirelength_um / d2.wirelength_um - 1.0) * 100.0,
        (d3.buffer_count as f64 / d2.buffer_count.max(1) as f64 - 1.0) * 100.0,
        (d3.total_power_mw() / d2.total_power_mw() - 1.0) * 100.0
    );
    println!("paper: wirelength -33.6%, buffers -48.6%, power -32.1%");
}
