//! Export every interchange view of a design: the characterized library
//! as Liberty, the cell layouts as binary GDSII, the synthesized netlist
//! as structural Verilog, and the placement as DEF — the file set a
//! downstream tool flow would pick up.
//!
//! ```text
//! cargo run --release --example export_views
//! ```
//!
//! Files land in `target/export/`.

use std::fs;
use std::path::Path;

use m3d_cells::{gds, layout::generate_layout, liberty, CellLibrary, Topology};
use m3d_netlist::{io, BenchScale, Benchmark};
use m3d_place::{def, Placer};
use m3d_tech::{DesignStyle, TechNode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = Path::new("target/export");
    fs::create_dir_all(out_dir)?;

    let node = TechNode::n45();
    let lib = CellLibrary::build(&node, DesignStyle::Tmi);

    // 1. Liberty: the characterized T-MI library.
    let lib_text = liberty::to_liberty(&lib, "tmi45");
    fs::write(out_dir.join("tmi45.lib"), &lib_text)?;
    println!(
        "tmi45.lib        {:7} bytes  ({} cells)",
        lib_text.len(),
        lib.len()
    );

    // 2. GDSII: every folded cell layout in one stream.
    let geoms: Vec<(String, _)> = lib
        .iter()
        .map(|(_, cell)| {
            let topo = Topology::for_function(cell.function);
            (
                cell.name.clone(),
                generate_layout(&node, &topo, DesignStyle::Tmi, cell.drive),
            )
        })
        .collect();
    let named: Vec<(&str, &m3d_geom::ShapeSet)> = geoms
        .iter()
        .map(|(name, g)| (name.as_str(), &g.shapes))
        .collect();
    let gds_bytes = gds::to_gds(&named, "tmi45");
    fs::write(out_dir.join("tmi45.gds"), &gds_bytes)?;
    let structures = gds::boundary_counts(&gds_bytes)?;
    println!(
        "tmi45.gds        {:7} bytes  ({} structures, {} boundaries)",
        gds_bytes.len(),
        structures.len(),
        structures.iter().map(|(_, n)| n).sum::<usize>()
    );

    // 3. Verilog: a synthesized benchmark netlist.
    let netlist = Benchmark::Aes.generate(&lib, BenchScale::Small);
    let verilog = io::to_verilog(&netlist, &lib);
    fs::write(out_dir.join("aes.v"), &verilog)?;
    // Round-trip check before shipping.
    let back = io::from_verilog(&verilog, &lib)?;
    assert_eq!(back.instance_count(), netlist.instance_count());
    println!(
        "aes.v            {:7} bytes  ({} instances, round-trip verified)",
        verilog.len(),
        netlist.instance_count()
    );

    // 4. DEF: the placed design.
    let placement = Placer::new(&lib).iterations(40).place(&netlist);
    let def_text = def::to_def(&netlist, &placement, &lib);
    fs::write(out_dir.join("aes.def"), &def_text)?;
    println!(
        "aes.def          {:7} bytes  (core {:.0} x {:.0} um)",
        def_text.len(),
        placement.core.width() as f64 * 1e-3,
        placement.core.height() as f64 * 1e-3
    );

    println!("\nall views written to target/export/");
    Ok(())
}
