//! Demonstrates the flow supervisor: a clean run, a planted transient
//! fault absorbed by retry, the degradation ladder, and a hard failure
//! that surfaces as a typed disposition instead of a panic.
//!
//! ```text
//! cargo run --release --example supervised_flow
//! ```

use m3d_netlist::{BenchScale, Benchmark};
use m3d_tech::{DesignStyle, NodeId};
use monolith3d::{Disposition, FaultPlan, FlowConfig, FlowSupervisor, SupervisorPolicy};

fn cfg() -> FlowConfig {
    FlowConfig::new(NodeId::N45).scale(BenchScale::Small)
}

fn report(tag: &str, r: &monolith3d::FlowReport) {
    println!("== {tag} ==");
    match &r.disposition {
        Disposition::Closed => println!("  closed as configured"),
        Disposition::ClosedDegraded { relaxations } => {
            println!("  closed degraded after:");
            for rx in relaxations {
                println!("    - {rx}");
            }
        }
        Disposition::Failed { stage, error } => {
            println!("  FAILED in {stage}: {error}");
        }
    }
    for a in &r.attempts {
        let outcome = match &a.error {
            None => "ok".to_string(),
            Some(e) => format!("err: {e}"),
        };
        println!(
            "  rung {} attempt {} {:<26} {}",
            a.rung,
            a.attempt,
            a.stage.to_string(),
            outcome
        );
    }
    if let Some(res) = &r.result {
        println!(
            "  sign-off: WNS {:+.0} ps @ {:.0} ps clock, {:.2} mW",
            res.wns_ps,
            r.clock_ps,
            res.total_power_mw()
        );
    }
    println!();
}

fn main() {
    // 1. No faults: the supervisor closes exactly like the plain flow.
    let clean = FlowSupervisor::new(Benchmark::Aes, DesignStyle::TwoD, cfg()).run();
    report("clean run", &clean);

    // 2. A transient fault in post-route optimization: absorbed by one
    //    retry from the routing checkpoint.
    let retried = FlowSupervisor::new(Benchmark::Aes, DesignStyle::TwoD, cfg())
        .with_faults(FaultPlan::new().fail_stage("postroute", 1))
        .run();
    report("transient post-route fault", &retried);

    // 3. Repeated faults with no retry budget: the degradation ladder
    //    walks extra passes -> looser floorplan -> slower clock.
    let degraded = FlowSupervisor::new(Benchmark::Aes, DesignStyle::TwoD, cfg())
        .policy(SupervisorPolicy {
            max_stage_attempts: 1,
            ..SupervisorPolicy::default()
        })
        .with_faults(
            FaultPlan::new()
                .fail_stage("postroute", 1)
                .fail_stage("postroute", 2)
                .fail_stage("postroute", 3),
        )
        .run();
    report("degradation ladder", &degraded);

    // 4. A persistent routing fault with degradation disabled: a typed
    //    Failed disposition, not a panic.
    let failed = FlowSupervisor::new(Benchmark::Aes, DesignStyle::TwoD, cfg())
        .policy(SupervisorPolicy {
            allow_degradation: false,
            ..SupervisorPolicy::default()
        })
        .with_faults(FaultPlan::new().always_stage("route"))
        .run();
    report("persistent routing fault", &failed);

    // 5. A degenerate configuration: rejected pre-flight with a typed
    //    error before any stage runs.
    let mut bad = cfg();
    bad.clock_ps = Some(f64::NAN);
    match monolith3d::Flow::new(Benchmark::Aes, DesignStyle::TwoD, bad).try_run() {
        Ok(_) => println!("== degenerate config == unexpectedly closed"),
        Err(e) => println!("== degenerate config ==\n  rejected: {e}"),
    }
}
