//! Quickstart: build the T-MI and 2D cell libraries, run one
//! iso-performance comparison on the AES benchmark, and print the paper's
//! headline numbers (footprint / wirelength / power deltas).
//!
//! ```text
//! cargo run --release --example quickstart            # reduced scale, seconds
//! cargo run --release --example quickstart -- --paper # paper scale
//! ```

use m3d_cells::CellLibrary;
use m3d_netlist::{BenchScale, Benchmark};
use m3d_tech::{DesignStyle, NodeId, TechNode};
use monolith3d::{Comparison, FlowConfig};

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let scale = if paper {
        BenchScale::Paper
    } else {
        BenchScale::Small
    };

    // 1. The cell libraries: fold every Nangate-class cell into two tiers.
    let node = TechNode::n45();
    let lib2d = CellLibrary::build(&node, DesignStyle::TwoD);
    let lib3d = CellLibrary::build(&node, DesignStyle::Tmi);
    let inv2d = lib2d.cell_named("INV_X1").expect("INV_X1");
    let inv3d = lib3d.cell_named("INV_X1").expect("INV_X1");
    println!(
        "INV_X1: 2D {}x{} nm -> T-MI {}x{} nm ({} MIVs, {:.0}% footprint)",
        inv2d.width_nm,
        inv2d.height_nm,
        inv3d.width_nm,
        inv3d.height_nm,
        inv3d.miv_count,
        100.0 * inv3d.area_um2() / inv2d.area_um2()
    );

    // 2. One full iso-performance comparison: synthesis -> placement ->
    //    routing -> timing closure -> sign-off power, in both styles.
    let cfg = FlowConfig::new(NodeId::N45).scale(scale);
    let cmp = Comparison::run(Benchmark::Aes, &cfg);
    println!(
        "\nAES @ 45 nm, clock {:.2} ns (timing met: 2D {}, T-MI {})",
        cmp.two_d.clock_ps * 1e-3,
        cmp.two_d.wns_ps >= 0.0,
        cmp.tmi.wns_ps >= 0.0
    );
    println!(
        "footprint {:+6.1}%   wirelength {:+6.1}%   total power {:+6.1}%",
        cmp.footprint_pct(),
        cmp.wirelength_pct(),
        cmp.total_power_pct()
    );
    println!(
        "power breakdown (2D -> T-MI, mW): cell {:.2} -> {:.2}, net {:.2} -> {:.2}, leakage {:.3} -> {:.3}",
        cmp.two_d.power.cell_mw,
        cmp.tmi.power.cell_mw,
        cmp.two_d.power.net_mw(),
        cmp.tmi.power.net_mw(),
        cmp.two_d.power.leakage_mw,
        cmp.tmi.power.leakage_mw
    );
    println!("\npaper (Table 4, AES): footprint -42.4%, wirelength -23.6%, power -10.9%");
}
