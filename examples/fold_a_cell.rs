//! Transistor-level cell folding, step by step: build a NAND2 topology,
//! render it as a planar 2D cell and as a folded T-MI cell, extract both
//! layouts under the two top-silicon models, and SPICE-characterize the
//! results — the paper's Sections 3.1-3.2 on one gate.
//!
//! ```text
//! cargo run --release --example fold_a_cell
//! ```

use m3d_cells::{
    characterize::characterize_spice, layout::generate_layout, CellFunction, Signal, Topology,
};
use m3d_extract::{extract_cell, TopSiliconModel};
use m3d_tech::{CellLayer, DesignStyle, TechNode};

fn main() {
    let node = TechNode::n45();
    let f = CellFunction::Nand2;
    let topo = Topology::for_function(f);
    println!(
        "NAND2 topology: {} transistors, PDN stack depth {}, PUN depth {}\n",
        topo.device_count(),
        topo.nmos_stack_depth(Signal::Output(0)),
        topo.pmos_stack_depth(Signal::Output(0))
    );

    for style in [DesignStyle::TwoD, DesignStyle::Tmi] {
        let geom = generate_layout(&node, &topo, style, 1);
        println!(
            "{} layout: {} x {} nm ({:.3} um2), {} shapes, {} MIVs",
            style.label(),
            geom.width_nm,
            geom.height_nm,
            geom.area_um2(),
            geom.shapes.len(),
            geom.miv_count
        );
        // Per-layer drawn metal/poly.
        for layer in [
            CellLayer::Poly,
            CellLayer::PolyBottom,
            CellLayer::Metal1,
            CellLayer::MetalB1,
        ] {
            let len = geom.shapes.run_length_on_layer(layer.index());
            if len > 0 {
                println!("    {:12} run length {:5} nm", format!("{layer:?}"), len);
            }
        }
        // Extraction under both top-silicon models (Table 1).
        let die = extract_cell(&node, &geom.shapes, TopSiliconModel::Dielectric);
        let con = extract_cell(&node, &geom.shapes, TopSiliconModel::Conductor);
        println!(
            "    extracted totals: R {:.3} kOhm, C {:.3} fF (dielectric) / {:.3} fF (conductor)",
            die.total_r(),
            die.total_c(),
            con.total_c()
        );
        // SPICE characterization at the paper's fast corner (Table 2).
        let t = characterize_spice(&node, f, 1, &topo, &geom, vec![7.5], vec![0.8]);
        println!(
            "    SPICE @ (7.5 ps, 0.8 fF): delay {:.1} ps, energy {:.3} fJ\n",
            t.delay.lookup(7.5, 0.8),
            t.energy.lookup(7.5, 0.8)
        );
    }
    println!("paper (Tables 1-2, NAND2): R 0.372 -> 0.237 kOhm; delay 21.2 -> 20.9 ps (98.6%)");
}
