//! The paper's Fig. 4 in miniature: the T-MI power benefit grows as the
//! target clock tightens, because the 2D design must burn ever more
//! buffers and drive strength to push signals across its longer wires.
//!
//! ```text
//! cargo run --release --example clock_pressure [-- --paper]
//! ```

use m3d_netlist::{BenchScale, Benchmark};
use m3d_tech::NodeId;
use monolith3d::{Comparison, FlowConfig};

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let scale = if paper {
        BenchScale::Paper
    } else {
        BenchScale::Small
    };

    println!("AES power benefit vs target clock (45 nm)\n");
    println!("clock(ns)  2D power   T-MI power   reduction   2D buffers -> T-MI");
    // The paper sweeps 1.0 / 0.8 / 0.72 ns on AES; the flow rescales these
    // to this toolkit's library speed (see FlowConfig::clock_scale).
    for clock_ps in [1000.0, 800.0, 720.0] {
        let cfg = FlowConfig::new(NodeId::N45).scale(scale).clock(clock_ps);
        let cmp = Comparison::run(Benchmark::Aes, &cfg);
        println!(
            "{:8.2} {:9.2} {:12.2} {:+10.1}%   {:6} -> {:6}   (wns {:+.0}/{:+.0})",
            clock_ps * 1e-3,
            cmp.two_d.total_power_mw(),
            cmp.tmi.total_power_mw(),
            cmp.total_power_pct(),
            cmp.two_d.buffer_count,
            cmp.tmi.buffer_count,
            cmp.two_d.wns_ps,
            cmp.tmi.wns_ps
        );
    }
    println!("\npaper trend: the reduction rate grows monotonically as the clock tightens");
}
