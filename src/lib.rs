//! Umbrella crate: re-exports the whole `monolith3d` toolkit so the
//! repository-level examples and integration tests have one import root.
//!
//! The substance lives in the `crates/` workspace members; see the README
//! for the map.

pub use m3d_cells as cells;
pub use m3d_extract as extract;
pub use m3d_geom as geom;
pub use m3d_netlist as netlist;
pub use m3d_place as place;
pub use m3d_power as power;
pub use m3d_route as route;
pub use m3d_spice as spice;
pub use m3d_sta as sta;
pub use m3d_synth as synth;
pub use m3d_tech as tech;
pub use monolith3d as study;
