//! Cache behaviour of the flow: a cache-hit result must be bit-identical
//! to the cold run, and the flow key must track exactly the configuration
//! knobs the stage graph consumes.

use std::sync::Arc;

use m3d_netlist::{BenchScale, Benchmark};
use m3d_tech::{DesignStyle, NodeId};
use monolith3d::{ArtifactCache, Flow, FlowConfig};

fn small(node: NodeId) -> FlowConfig {
    FlowConfig::new(node).scale(BenchScale::Small)
}

#[test]
fn cache_hit_is_bit_identical_to_the_cold_run_at_both_nodes() {
    for node in [NodeId::N45, NodeId::N7] {
        let cache = Arc::new(ArtifactCache::default());
        let flow = Flow::new(Benchmark::Aes, DesignStyle::TwoD, small(node));
        let cold = flow.try_run_with_cache(&cache).expect("cold run closes");
        assert_eq!(cache.stats().flow_hits, 0);
        assert_eq!(cache.stats().flow_stores, 1);
        let warm = flow.try_run_with_cache(&cache).expect("warm run closes");
        assert_eq!(cache.stats().flow_hits, 1, "second run must hit the cache");
        assert_eq!(cold, warm, "cache hit must be bit-identical at {node:?}");
    }
}

#[test]
fn consumed_knob_invalidates_the_key_and_unconsumed_knob_does_not() {
    let cache = Arc::new(ArtifactCache::default());
    let base = small(NodeId::N45);
    let cold = Flow::new(Benchmark::Des, DesignStyle::TwoD, base.clone())
        .try_run_with_cache(&cache)
        .expect("cold run closes");

    // A 2D flow never reads the T-MI WLM switch, so flipping it must
    // share the stored result instead of re-running.
    let mut unconsumed = base.clone();
    unconsumed.tmi_wlm = false;
    let shared = Flow::new(Benchmark::Des, DesignStyle::TwoD, unconsumed)
        .try_run_with_cache(&cache)
        .expect("shared run closes");
    assert_eq!(
        cache.stats().flow_hits,
        1,
        "unconsumed knob must not split the key"
    );
    assert_eq!(cold, shared);

    // pin_cap_scale is consumed (library build and every downstream
    // stage), so changing it must miss and re-run.
    let mut consumed = base;
    consumed.pin_cap_scale = 0.6;
    let rerun = Flow::new(Benchmark::Des, DesignStyle::TwoD, consumed)
        .try_run_with_cache(&cache)
        .expect("re-run closes");
    let stats = cache.stats();
    assert_eq!(stats.flow_hits, 1, "consumed-knob change must not hit");
    assert_eq!(stats.flow_stores, 2, "the re-run stored a distinct entry");
    assert_ne!(rerun, cold, "scaled pin caps change the sign-off result");
    assert!(
        stats.library_builds >= 2,
        "the scaled run characterized its own library"
    );
}

#[test]
fn cached_flows_share_one_library_build_per_key() {
    let cache = Arc::new(ArtifactCache::default());
    let cfg = small(NodeId::N45);
    for bench in [Benchmark::Aes, Benchmark::Des] {
        Flow::new(bench, DesignStyle::TwoD, cfg.clone())
            .try_run_with_cache(&cache)
            .expect("run closes");
    }
    let stats = cache.stats();
    assert_eq!(
        stats.library_builds, 1,
        "two 2D flows at one node share one library build"
    );
    assert!(stats.library_hits >= 1);
}
