//! Golden-trace suite for the observability layer: the smoke-subset
//! flow plan runs under a `VecRecorder` and the resulting event stream
//! must replay the stage-graph topology exactly, balance every span,
//! agree with `CacheStats` on cache traffic, aggregate into the same
//! `MetricsRegistry` counters, survive a JSONL round trip through the
//! schema validator, and be order-normalized identical between
//! `--jobs 1` and `--jobs 4` runs. Separate tests pin the retry /
//! degradation / checkpoint-resume event shapes against fault plans.

use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use m3d_bench::SMOKE_SUBSET;
use m3d_netlist::{BenchScale, Benchmark};
use m3d_tech::{DesignStyle, NodeId};
use monolith3d::observe::validate_jsonl;
use monolith3d::{
    experiments, ArtifactCache, CacheKind, Disposition, Event, EventKind, ExperimentPlan,
    FaultPlan, FlowConfig, FlowStage, FlowSupervisor, JsonlRecorder, MetricsRegistry,
    ParallelExecutor, Recorder, RunReport, StageGraph, StageOutcome, Tee, VecRecorder,
};

fn cfg() -> FlowConfig {
    FlowConfig::new(NodeId::N45).scale(BenchScale::Small)
}

/// The exact flow matrix the smoke subset fans out.
fn subset_plan() -> ExperimentPlan {
    let mut plan = ExperimentPlan::new();
    for name in SMOKE_SUBSET {
        plan.merge(experiments::plan_for(name, BenchScale::Small));
    }
    assert!(!plan.is_empty(), "the smoke subset must plan flows");
    plan
}

/// An in-memory `Write` target for `JsonlRecorder`, shareable between
/// the recorder (which owns a boxed clone) and the test.
#[derive(Clone, Default, Debug)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().expect("buf lock").clone()).expect("utf-8 trace")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buf lock").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Everything one instrumented plan run produced, across all sinks.
struct TraceRun {
    events: Vec<Event>,
    stats: monolith3d::CacheStats,
    report: RunReport,
    jsonl: String,
}

/// Runs `plan` on a fresh private cache with a `VecRecorder`, a
/// `MetricsRegistry` and a `JsonlRecorder` all teed onto the cache, so
/// one run feeds every assertion style.
fn run_plan_traced(plan: &ExperimentPlan, jobs: usize) -> TraceRun {
    let cache = Arc::new(ArtifactCache::default());
    let vec = Arc::new(VecRecorder::new());
    let metrics = Arc::new(MetricsRegistry::new());
    let buf = SharedBuf::default();
    let jsonl = Arc::new(JsonlRecorder::new(Box::new(buf.clone())));
    let inner = Arc::new(Tee::new(
        Arc::clone(&metrics) as Arc<dyn Recorder>,
        Arc::clone(&jsonl) as Arc<dyn Recorder>,
    ));
    cache.set_recorder(Arc::new(Tee::new(
        Arc::clone(&vec) as Arc<dyn Recorder>,
        inner as Arc<dyn Recorder>,
    )));
    let report = ParallelExecutor::new(jobs)
        .with_cache(Arc::clone(&cache))
        .run(plan);
    assert!(
        report.first_error().is_none(),
        "plan failed: {:?}",
        report.first_error()
    );
    jsonl.flush().expect("trace flushes");
    TraceRun {
        events: vec.events(),
        stats: cache.stats(),
        report: metrics.report(),
        jsonl: buf.contents(),
    }
}

fn subset_jobs1() -> &'static TraceRun {
    static RUN: OnceLock<TraceRun> = OnceLock::new();
    RUN.get_or_init(|| run_plan_traced(&subset_plan(), 1))
}

fn subset_jobs4() -> &'static TraceRun {
    static RUN: OnceLock<TraceRun> = OnceLock::new();
    RUN.get_or_init(|| run_plan_traced(&subset_plan(), 4))
}

/// One stage-scoped event with scheduler-dependent stamps (seq, thread,
/// timestamps, durations) stripped. Derives `Ord` so multisets compare
/// by sorting.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Norm {
    Started {
        stage: &'static str,
        rung: u32,
        attempt: u32,
        consumes: &'static [&'static str],
    },
    Finished {
        stage: &'static str,
        rung: u32,
        attempt: u32,
        outcome: &'static str,
    },
    Retry {
        stage: &'static str,
        next_attempt: u32,
    },
    Rung {
        rung: u32,
    },
    CheckpointWritten {
        cursor: &'static str,
    },
    CheckpointResumed {
        cursor: &'static str,
    },
}

type Groups = BTreeMap<(&'static str, &'static str), Vec<Norm>>;
type CacheCounts = BTreeMap<(&'static str, &'static str), u64>;

/// Splits a trace into per-`(bench, style)` stage-event sequences plus
/// global cache-traffic counts. `WorkerStolen` and `CacheCoalesced`
/// are scheduling artifacts, not flow semantics, and are dropped — a
/// coalesced wait already reports its `CacheHit`, so hit/miss counts
/// stay schedule-independent.
fn normalize(events: &[Event]) -> (Groups, CacheCounts) {
    let mut groups: Groups = BTreeMap::new();
    let mut cache: CacheCounts = BTreeMap::new();
    for ev in events {
        let (key, norm) = match ev.kind {
            EventKind::StageStarted {
                bench,
                style,
                stage,
                rung,
                attempt,
                consumes,
            } => (
                (bench.name(), style.label()),
                Norm::Started {
                    stage: stage.key(),
                    rung,
                    attempt,
                    consumes,
                },
            ),
            EventKind::StageFinished {
                bench,
                style,
                stage,
                rung,
                attempt,
                outcome,
                ..
            } => (
                (bench.name(), style.label()),
                Norm::Finished {
                    stage: stage.key(),
                    rung,
                    attempt,
                    outcome: outcome.key(),
                },
            ),
            EventKind::RetryScheduled {
                bench,
                style,
                stage,
                next_attempt,
            } => (
                (bench.name(), style.label()),
                Norm::Retry {
                    stage: stage.key(),
                    next_attempt,
                },
            ),
            EventKind::DegradationRungEntered { bench, style, rung } => {
                ((bench.name(), style.label()), Norm::Rung { rung })
            }
            EventKind::CheckpointWritten {
                bench,
                style,
                cursor,
                ..
            } => (
                (bench.name(), style.label()),
                Norm::CheckpointWritten { cursor },
            ),
            EventKind::CheckpointResumed {
                bench,
                style,
                cursor,
            } => (
                (bench.name(), style.label()),
                Norm::CheckpointResumed { cursor },
            ),
            EventKind::CacheHit { kind } => {
                *cache.entry(("hit", kind.key())).or_insert(0) += 1;
                continue;
            }
            EventKind::CacheMiss { kind } => {
                *cache.entry(("miss", kind.key())).or_insert(0) += 1;
                continue;
            }
            EventKind::CacheEvicted { kind, count } => {
                *cache.entry(("evicted", kind.key())).or_insert(0) += count;
                continue;
            }
            EventKind::CacheCoalesced { .. } | EventKind::WorkerStolen { .. } => continue,
            // Disk traffic is schedule- and persistence-dependent (a
            // warm --cache-dir legitimately changes it), so the
            // normalized trace identity excludes it, like coalescing.
            EventKind::DiskHit { .. }
            | EventKind::DiskMiss { .. }
            | EventKind::DiskEvicted { .. }
            | EventKind::DiskQuarantined { .. }
            | EventKind::StoreDegraded { .. } => continue,
            // Governance events describe the run's life-cycle, not the
            // flow semantics of any one point, so the normalized trace
            // identity excludes them too.
            EventKind::CancelRequested { .. }
            | EventKind::PointCancelled { .. }
            | EventKind::AdmissionRejected { .. }
            | EventKind::QuotaExhausted { .. }
            | EventKind::DrainStarted
            | EventKind::DrainFinished { .. }
            | EventKind::StageAbandoned { .. } => continue,
        };
        groups.entry(key).or_default().push(norm);
    }
    (groups, cache)
}

/// Stage spans keyed by full identity, for balance checking. The same
/// identity can be open more than once at `--jobs 4` (two configs of
/// one `(bench, style)` pair racing), so this counts rather than flags.
fn open_span_counts(
    events: &[Event],
) -> HashMap<(&'static str, &'static str, &'static str, u32, u32), i64> {
    let mut open = HashMap::new();
    for ev in events {
        match ev.kind {
            EventKind::StageStarted {
                bench,
                style,
                stage,
                rung,
                attempt,
                ..
            } => {
                *open
                    .entry((bench.name(), style.label(), stage.key(), rung, attempt))
                    .or_insert(0) += 1;
            }
            EventKind::StageFinished {
                bench,
                style,
                stage,
                rung,
                attempt,
                ..
            } => {
                let slot = open
                    .entry((bench.name(), style.label(), stage.key(), rung, attempt))
                    .or_insert(0);
                *slot -= 1;
                assert!(
                    *slot >= 0,
                    "stage_finished before its stage_started: \
                     {}/{} {} rung {rung} attempt {attempt}",
                    bench.name(),
                    style.label(),
                    stage.key()
                );
            }
            _ => {}
        }
    }
    open
}

#[test]
fn every_stage_started_pairs_with_one_terminal_event() {
    let run = subset_jobs1();
    let started = run
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::StageStarted { .. }))
        .count();
    let finished = run
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::StageFinished { .. }))
        .count();
    assert!(started > 0, "the subset plan must open stage spans");
    assert_eq!(started, finished, "every span must terminate exactly once");
    for (span, open) in open_span_counts(&run.events) {
        assert_eq!(open, 0, "span left open or over-closed: {span:?}");
    }
    // Sequence numbers are strictly increasing in a VecRecorder dump.
    for pair in run.events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "seq must be strictly monotonic");
    }
}

#[test]
fn event_stream_replays_the_stage_graph_topology() {
    let run = subset_jobs1();
    let graph = StageGraph::paper_pipeline();
    // Per-(bench, style) walk. At --jobs 1 the worker runs each flow
    // start-to-finish, so a pair's stream is a concatenation of whole
    // flows: each begins at the entry stage, then every hop is a legal
    // graph transition, a retry of the same stage, or a wrap-around
    // from the exit stage into the next flow of the same pair. A
    // degradation-ladder escalation restores older artifact state, so
    // the hop right after one is exempt.
    let mut walks: HashMap<(&str, &str), (Option<(FlowStage, u32)>, bool)> = HashMap::new();
    for ev in &run.events {
        match ev.kind {
            EventKind::StageStarted {
                bench,
                style,
                stage,
                attempt,
                ..
            } => {
                let walk = walks
                    .entry((bench.name(), style.label()))
                    .or_insert((None, false));
                match (walk.0, walk.1) {
                    (None, _) => assert_eq!(
                        stage,
                        graph.entry_stage(),
                        "{}/{}: a trace must open at the entry stage",
                        bench.name(),
                        style.label()
                    ),
                    (_, true) => {} // first hop after a ladder escalation
                    (Some((prev, prev_attempt)), false) => {
                        let retry = stage == prev && attempt == prev_attempt + 1;
                        let forward = attempt == 1 && graph.legal_transition(prev, stage);
                        let next_flow = attempt == 1
                            && prev == graph.exit_stage()
                            && stage == graph.entry_stage();
                        assert!(
                            retry || forward || next_flow,
                            "{}/{}: illegal hop {} (attempt {prev_attempt}) -> {} (attempt {attempt})",
                            bench.name(),
                            style.label(),
                            prev.key(),
                            stage.key()
                        );
                    }
                }
                *walk = (Some((stage, attempt)), false);
            }
            EventKind::DegradationRungEntered { bench, style, .. } => {
                walks
                    .entry((bench.name(), style.label()))
                    .or_insert((None, false))
                    .1 = true;
            }
            _ => {}
        }
    }
    assert!(
        !walks.is_empty(),
        "the subset must cover some design points"
    );
    // Every pair's last span is the exit stage: all subset flows close.
    for ((bench, style), (last, _)) in &walks {
        assert_eq!(
            last.map(|(s, _)| s),
            Some(graph.exit_stage()),
            "{bench}/{style}: the final span must be the exit stage"
        );
    }
}

#[test]
fn trace_cache_counters_equal_cache_stats() {
    let run = subset_jobs1();
    let mut hits = [0u64; 2]; // [library, flow]
    let mut misses = [0u64; 2];
    let mut evicted = [0u64; 2];
    let mut coalesced = 0u64;
    for ev in &run.events {
        match ev.kind {
            EventKind::CacheHit { kind } => hits[kind as usize] += 1,
            EventKind::CacheMiss { kind } => misses[kind as usize] += 1,
            EventKind::CacheEvicted { kind, count } => evicted[kind as usize] += count,
            EventKind::CacheCoalesced { .. } => coalesced += 1,
            _ => {}
        }
    }
    let lib = CacheKind::Library as usize;
    let flow = CacheKind::Flow as usize;
    let s = &run.stats;
    assert_eq!(hits[lib], s.library_hits, "library hits: trace vs stats");
    assert_eq!(
        misses[lib], s.library_builds,
        "library builds: trace vs stats"
    );
    assert_eq!(evicted[lib], s.library_evictions);
    assert_eq!(hits[flow], s.flow_hits, "flow hits: trace vs stats");
    assert_eq!(misses[flow], s.flow_misses, "flow misses: trace vs stats");
    assert_eq!(evicted[flow], s.flow_evictions);
    // Serial execution never coalesces: nothing is ever in flight twice.
    assert_eq!(coalesced, 0, "a --jobs 1 run cannot coalesce builds");
}

#[test]
fn metrics_registry_aggregates_exactly_the_recorded_events() {
    let run = subset_jobs1();
    let mut expected: BTreeMap<&str, u64> = BTreeMap::new();
    for ev in &run.events {
        let (key, by) = match ev.kind {
            EventKind::StageStarted { .. } => ("stage_started", 1),
            EventKind::StageFinished { outcome, .. } => match outcome {
                StageOutcome::Ok => ("stage_finished_ok", 1),
                StageOutcome::Failed => ("stage_finished_failed", 1),
                StageOutcome::Panicked => ("stage_finished_panicked", 1),
                StageOutcome::TimedOut => ("stage_finished_timed_out", 1),
                StageOutcome::Interrupted => ("stage_finished_interrupted", 1),
                StageOutcome::Cancelled => ("stage_finished_cancelled", 1),
            },
            EventKind::RetryScheduled { .. } => ("retry_scheduled", 1),
            EventKind::DegradationRungEntered { .. } => ("degradation_rung_entered", 1),
            EventKind::CheckpointWritten { .. } => ("checkpoint_written", 1),
            EventKind::CheckpointResumed { .. } => ("checkpoint_resumed", 1),
            EventKind::CacheHit { kind } => match kind {
                CacheKind::Library => ("cache_hit_library", 1),
                CacheKind::Flow => ("cache_hit_flow", 1),
            },
            EventKind::CacheMiss { kind } => match kind {
                CacheKind::Library => ("cache_miss_library", 1),
                CacheKind::Flow => ("cache_miss_flow", 1),
            },
            EventKind::CacheCoalesced { kind } => match kind {
                CacheKind::Library => ("cache_coalesced_library", 1),
                CacheKind::Flow => ("cache_coalesced_flow", 1),
            },
            EventKind::CacheEvicted { kind, count } => match kind {
                CacheKind::Library => ("cache_evicted_library", count),
                CacheKind::Flow => ("cache_evicted_flow", count),
            },
            EventKind::WorkerStolen { .. } => ("worker_stolen", 1),
            EventKind::DiskHit { kind } => match kind {
                CacheKind::Library => ("disk_hit_library", 1),
                CacheKind::Flow => ("disk_hit_flow", 1),
            },
            EventKind::DiskMiss { kind } => match kind {
                CacheKind::Library => ("disk_miss_library", 1),
                CacheKind::Flow => ("disk_miss_flow", 1),
            },
            EventKind::DiskEvicted { kind, count, .. } => match kind {
                CacheKind::Library => ("disk_evicted_library", count),
                CacheKind::Flow => ("disk_evicted_flow", count),
            },
            EventKind::DiskQuarantined { .. } => ("disk_quarantined", 1),
            EventKind::StoreDegraded { .. } => ("store_degraded", 1),
            EventKind::CancelRequested { .. } => ("cancel_requested", 1),
            EventKind::PointCancelled { .. } => ("point_cancelled", 1),
            EventKind::AdmissionRejected { .. } => ("admission_rejected", 1),
            EventKind::QuotaExhausted { .. } => ("quota_exhausted", 1),
            EventKind::DrainStarted => ("drain_started", 1),
            EventKind::DrainFinished { .. } => ("drain_finished", 1),
            EventKind::StageAbandoned { .. } => ("stage_abandoned", 1),
        };
        *expected.entry(key).or_insert(0) += by;
    }
    let got: BTreeMap<&str, u64> = run
        .report
        .counters
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    assert_eq!(got, expected, "registry counters vs raw event stream");
    // The per-stage histograms account for every terminated span.
    let finished: u64 = [
        "ok",
        "failed",
        "panicked",
        "timed_out",
        "interrupted",
        "cancelled",
    ]
    .iter()
    .map(|o| run.report.counter(&format!("stage_finished_{o}")))
    .sum();
    let histogrammed: u64 = run.report.stage_wall.iter().map(|(_, h)| h.count).sum();
    assert_eq!(histogrammed, finished, "histograms vs terminal events");
    // And the JSON rendering carries every counter verbatim.
    let json = run.report.to_json();
    for (k, v) in &run.report.counters {
        assert!(
            json.contains(&format!("\"{k}\": {v}")),
            "report JSON must carry {k}={v}"
        );
    }
}

#[test]
fn jsonl_trace_validates_and_matches_the_vec_recorder() {
    let run = subset_jobs1();
    let summary = validate_jsonl(&run.jsonl).expect("the emitted trace validates");
    assert_eq!(summary.events, run.events.len(), "one line per event");
    let started = run
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::StageStarted { .. }))
        .count();
    assert_eq!(summary.stage_spans, started);
    assert_eq!(
        summary.cache_hits,
        run.stats.library_hits + run.stats.flow_hits
    );
    assert_eq!(
        summary.cache_misses,
        run.stats.library_builds + run.stats.flow_misses
    );
    assert_eq!(summary.checkpoints_written, 0, "no checkpointing armed");
    assert_eq!(summary.checkpoints_resumed, 0);
}

#[test]
fn jobs1_and_jobs4_traces_are_order_normalized_identical() {
    let (groups1, cache1) = normalize(&subset_jobs1().events);
    let (groups4, cache4) = normalize(&subset_jobs4().events);
    assert_eq!(
        cache1, cache4,
        "cache traffic must be schedule-independent (coalesced waits count as hits)"
    );
    assert_eq!(
        groups1.keys().collect::<Vec<_>>(),
        groups4.keys().collect::<Vec<_>>(),
        "both runs cover the same design points"
    );
    // Two configs of one (bench, style) pair may interleave at --jobs 4,
    // so each pair's events compare as a sorted multiset.
    for (key, seq1) in &groups1 {
        let mut a = seq1.clone();
        let mut b = groups4[key].clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "{key:?}: normalized event multisets diverge");
    }
}

/// Sharper ordering claim on a plan whose points all have distinct
/// `(bench, style)` pairs: with no intra-pair interleaving possible,
/// the normalized per-pair sequences must match **in order**, not just
/// as multisets.
#[test]
fn distinct_point_traces_are_identical_in_order_across_schedules() {
    let mut plan = ExperimentPlan::new();
    plan.push(Benchmark::Aes, DesignStyle::TwoD, cfg());
    plan.push(Benchmark::Aes, DesignStyle::Tmi, cfg());
    plan.push(Benchmark::Des, DesignStyle::TwoD, cfg());
    plan.push(Benchmark::Ldpc, DesignStyle::Tmi, cfg());
    let (groups1, _) = normalize(&run_plan_traced(&plan, 1).events);
    let (groups4, _) = normalize(&run_plan_traced(&plan, 4).events);
    assert_eq!(groups1.len(), 4);
    assert_eq!(groups1, groups4, "ordered per-point traces diverge");
}

#[test]
fn retries_are_traced_as_failed_span_then_reschedule_then_fresh_attempt() {
    let vec = Arc::new(VecRecorder::new());
    let report = FlowSupervisor::new(Benchmark::Aes, DesignStyle::TwoD, cfg())
        .with_cache(Arc::new(ArtifactCache::default()))
        .with_recorder(Arc::clone(&vec) as Arc<dyn Recorder>)
        .with_faults(FaultPlan::new().fail_stage("route", 1))
        .run();
    assert!(report.closed(), "one injected failure retries to closure");
    let events = vec.events();
    let routing: Vec<&EventKind> = events
        .iter()
        .map(|e| &e.kind)
        .filter(|k| {
            matches!(
                k,
                EventKind::StageFinished {
                    stage: FlowStage::Routing,
                    ..
                } | EventKind::RetryScheduled {
                    stage: FlowStage::Routing,
                    ..
                }
            )
        })
        .collect();
    // failed attempt 1 -> reschedule for 2 -> clean attempt 2.
    assert!(
        matches!(
            routing.first(),
            Some(EventKind::StageFinished {
                attempt: 1,
                outcome: StageOutcome::Failed,
                ..
            })
        ),
        "got {routing:?}"
    );
    assert!(
        matches!(
            routing.get(1),
            Some(EventKind::RetryScheduled {
                next_attempt: 2,
                ..
            })
        ),
        "got {routing:?}"
    );
    assert!(
        matches!(
            routing.get(2),
            Some(EventKind::StageFinished {
                attempt: 2,
                outcome: StageOutcome::Ok,
                ..
            })
        ),
        "got {routing:?}"
    );
    for (span, open) in open_span_counts(&events) {
        assert_eq!(open, 0, "span left open: {span:?}");
    }
}

#[test]
fn ladder_escalations_are_traced_with_increasing_rungs() {
    let vec = Arc::new(VecRecorder::new());
    let report = FlowSupervisor::new(Benchmark::Aes, DesignStyle::TwoD, cfg())
        .with_cache(Arc::new(ArtifactCache::default()))
        .with_recorder(Arc::clone(&vec) as Arc<dyn Recorder>)
        .with_faults(FaultPlan::new().always_stage("route"))
        .run();
    assert!(!report.closed(), "an always-failing stage cannot close");
    let events = vec.events();
    let rungs: Vec<u32> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::DegradationRungEntered { rung, .. } => Some(rung),
            _ => None,
        })
        .collect();
    assert!(
        !rungs.is_empty(),
        "exhausted retries must escalate the ladder"
    );
    let expected: Vec<u32> = (1..=rungs.len() as u32).collect();
    assert_eq!(rungs, expected, "rungs enter in order, once each");
    let max_started_rung = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::StageStarted { rung, .. } => Some(rung),
            _ => None,
        })
        .max()
        .expect("stages ran");
    assert_eq!(
        max_started_rung,
        *rungs.last().expect("nonempty"),
        "the deepest rung entered is the deepest rung attempted"
    );
    for (span, open) in open_span_counts(&events) {
        assert_eq!(open, 0, "span left open: {span:?}");
    }
}

/// A fresh per-test checkpoint directory under the system temp dir.
fn ckpt_dir(tag: &str) -> PathBuf {
    static SERIAL: AtomicU64 = AtomicU64::new(0);
    let n = SERIAL.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("m3d-observe-{tag}-{}-{n}", std::process::id()))
}

/// Satellite: checkpoint resume with the cache shared with a parallel
/// executor. A plan fans out first (warming the shared cache mid-plan),
/// a checkpointed run on the same cache is killed at routing, and the
/// resumed run's trace must open with `CheckpointResumed` before any
/// live stage — re-running no completed stage.
#[test]
fn resume_under_a_parallel_executor_traces_checkpoint_resumed_first() {
    let cache = Arc::new(ArtifactCache::default());
    let mut plan = ExperimentPlan::new();
    plan.merge(experiments::plan_for("fig3", BenchScale::Small));
    let fan_out = ParallelExecutor::new(2)
        .with_cache(Arc::clone(&cache))
        .run(&plan);
    assert!(fan_out.first_error().is_none(), "warm-up plan must close");

    let dir = ckpt_dir("resume");
    let kill_trace = Arc::new(VecRecorder::new());
    let interrupted = FlowSupervisor::new(Benchmark::Aes, DesignStyle::TwoD, cfg())
        .with_cache(Arc::clone(&cache))
        .with_checkpoints(&dir)
        .expect("checkpoint dir opens")
        .with_recorder(Arc::clone(&kill_trace) as Arc<dyn Recorder>)
        .with_faults(FaultPlan::new().kill_at("route", 1))
        .run();
    assert!(!interrupted.closed(), "the kill interrupts the run");
    let killed = kill_trace.events();
    assert!(
        killed.iter().any(|e| matches!(
            e.kind,
            EventKind::CheckpointWritten { bytes, .. } if bytes > 0
        )),
        "completed stages persist nonempty snapshots"
    );
    assert!(
        !killed.iter().any(|e| matches!(
            e.kind,
            EventKind::StageStarted {
                stage: FlowStage::Routing,
                ..
            }
        )),
        "a kill models SIGKILL: it strikes before the span opens"
    );
    for (span, open) in open_span_counts(&killed) {
        assert_eq!(open, 0, "the crashed trace still balances: {span:?}");
    }

    let resume_trace = Arc::new(VecRecorder::new());
    let resumed = FlowSupervisor::resume_from(&dir)
        .expect("a killed run resumes")
        .with_cache(Arc::clone(&cache))
        .with_recorder(Arc::clone(&resume_trace) as Arc<dyn Recorder>)
        .run();
    assert_eq!(resumed.disposition, Disposition::Closed);
    // No completed stage re-ran: the crashed run's records come back
    // verbatim as the resumed report's prefix.
    assert_eq!(
        resumed.attempts[..interrupted.attempts.len()],
        interrupted.attempts[..],
        "restored records must match the crashed run's prefix"
    );
    let events = resume_trace.events();
    assert!(
        matches!(
            events.first().map(|e| &e.kind),
            Some(EventKind::CheckpointResumed { .. })
        ),
        "a resumed trace opens with checkpoint_resumed, got {:?}",
        events.first()
    );
    let first_live = events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::StageStarted { stage, .. } => Some(stage),
            _ => None,
        })
        .expect("the resumed run runs live stages");
    assert_eq!(
        first_live,
        FlowStage::Routing,
        "resume continues at the first incomplete stage"
    );
    assert!(
        !events.iter().any(|e| matches!(
            e.kind,
            EventKind::StageStarted {
                stage: FlowStage::Synthesis,
                ..
            }
        )),
        "synthesis completed before the kill and must not re-run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
