//! Cross-crate integration tests: the full design flow driven end to end
//! on reduced-scale benchmarks.

use m3d_netlist::{BenchScale, Benchmark};
use m3d_tech::{DesignStyle, NodeId};
use monolith3d::{Comparison, Flow, FlowConfig};

fn cfg(node: NodeId) -> FlowConfig {
    FlowConfig::new(node).scale(BenchScale::Small)
}

#[test]
fn every_benchmark_completes_the_45nm_flow() {
    for bench in Benchmark::ALL {
        let r = Flow::new(bench, DesignStyle::TwoD, cfg(NodeId::N45)).run();
        assert!(r.footprint_um2 > 0.0, "{bench}: no core");
        assert!(r.wirelength_um > 0.0, "{bench}: no routing");
        assert!(r.total_power_mw() > 0.0, "{bench}: no power");
        assert!(
            r.wns_ps > -0.25 * r.clock_ps,
            "{bench}: timing hopeless ({} ps)",
            r.wns_ps
        );
    }
}

#[test]
fn tmi_always_shrinks_footprint_and_wirelength() {
    for bench in [Benchmark::Aes, Benchmark::Des, Benchmark::Ldpc] {
        let cmp = Comparison::run(bench, &cfg(NodeId::N45));
        assert!(
            cmp.footprint_pct() < -20.0,
            "{bench}: footprint {:+.1}%",
            cmp.footprint_pct()
        );
        assert!(
            cmp.wirelength_pct() < -5.0,
            "{bench}: wirelength {:+.1}%",
            cmp.wirelength_pct()
        );
    }
}

#[test]
fn tmi_reduces_power_at_iso_performance() {
    let cmp = Comparison::run(Benchmark::Aes, &cfg(NodeId::N45));
    assert_eq!(cmp.two_d.clock_ps, cmp.tmi.clock_ps, "iso-performance");
    assert!(
        cmp.total_power_pct() < 0.0,
        "power {:+.1}%",
        cmp.total_power_pct()
    );
}

#[test]
fn the_7nm_flow_runs_and_scales_down() {
    let r45 = Flow::new(Benchmark::Aes, DesignStyle::TwoD, cfg(NodeId::N45)).run();
    let r7 = Flow::new(Benchmark::Aes, DesignStyle::TwoD, cfg(NodeId::N7)).run();
    // Footprint scales roughly with the square of the dimension shrink.
    assert!(
        r7.footprint_um2 < 0.2 * r45.footprint_um2,
        "7 nm footprint {} vs 45 nm {}",
        r7.footprint_um2,
        r45.footprint_um2
    );
    // Dynamic power per design drops with the node too.
    assert!(r7.total_power_mw() < r45.total_power_mw());
}

#[test]
fn hold_time_is_met_everywhere() {
    // The shortest flop-to-flop path includes a full CK->Q delay, far
    // beyond the 2 ps hold requirement; the sign-off must agree.
    for bench in [Benchmark::Aes, Benchmark::Des] {
        let r = Flow::new(bench, DesignStyle::Tmi, cfg(NodeId::N45)).run();
        assert!(r.hold_wns_ps > 0.0, "{bench}: hold {}", r.hold_wns_ps);
    }
}

#[test]
fn flows_are_deterministic() {
    let a = Flow::new(Benchmark::Des, DesignStyle::Tmi, cfg(NodeId::N45)).run();
    let b = Flow::new(Benchmark::Des, DesignStyle::Tmi, cfg(NodeId::N45)).run();
    assert_eq!(a.cell_count, b.cell_count);
    assert_eq!(a.wirelength_um, b.wirelength_um);
    assert_eq!(a.total_power_mw(), b.total_power_mw());
}

#[test]
fn clock_override_and_knobs_apply() {
    let base = Flow::new(Benchmark::Des, DesignStyle::Tmi, cfg(NodeId::N45)).run();
    let mut k = cfg(NodeId::N45);
    k.pin_cap_scale = 0.5;
    let scaled = Flow::new(Benchmark::Des, DesignStyle::Tmi, k).run();
    assert!(scaled.power.pin_mw < base.power.pin_mw);

    let slow = Flow::new(
        Benchmark::Des,
        DesignStyle::Tmi,
        cfg(NodeId::N45).clock(5000.0),
    )
    .run();
    assert!(slow.clock_ps > base.clock_ps);
}
