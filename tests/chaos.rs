//! Chaos harness for the flow supervisor: randomly generated fault
//! plans — injected errors, panics, delays, checkpoint corruption and
//! process kills at random stages/invocations — driven through a
//! checkpointed supervised run plus (when killed) a resume leg.
//!
//! Invariants asserted for every generated plan:
//!
//! * the supervisor always terminates with a valid [`Disposition`]
//!   (closed runs carry a result, failed runs don't) and never panics;
//! * a kill is always recoverable: `resume_from` either continues the
//!   run or reports a typed `CorruptCheckpoint` (nothing durable yet),
//!   in which case a fresh run finishes the job;
//! * resume never loses or double-runs a completed stage — the
//!   successful attempt records of the final run match the fault-free
//!   history whenever closure needed no degradation;
//! * any run that closes as `Closed` (undegraded) is bit-identical to
//!   the fault-free run.
//!
//! A second harness points the same seeded machinery at the persistent
//! artifact store: torn writes (a kill mid-publish), corrupted entries
//! and injected I/O failures, each followed by a restart — a fresh
//! store instance over the surviving directory. The invariant is the
//! store's whole contract: a faulted entry may cost a miss, but no
//! fault sequence may ever surface as a hit carrying wrong data, and a
//! fault-free repair epoch always converges the directory to warm.
//!
//! Case count defaults low for the local test suite; CI's seeded chaos
//! job raises it via `CHAOS_CASES` (the vendored proptest draws cases
//! deterministically from the test path, so a count is a full replay).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use m3d_netlist::{BenchScale, Benchmark};
use m3d_tech::{DesignStyle, NodeId};
use monolith3d::{
    DiskStore, Disposition, FaultPlan, FlowConfig, FlowError, FlowKey, FlowReport, FlowStage,
    FlowSupervisor, StoreFaultPlan,
};
use proptest::prelude::*;

fn cfg() -> FlowConfig {
    FlowConfig::new(NodeId::N45).scale(BenchScale::Small)
}

fn supervisor() -> FlowSupervisor {
    FlowSupervisor::new(Benchmark::Aes, DesignStyle::TwoD, cfg())
}

/// Number of chaos cases: `CHAOS_CASES` (CI sets 256+), default 24.
fn chaos_cases() -> u32 {
    std::env::var("CHAOS_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

fn ckpt_dir() -> PathBuf {
    static SERIAL: AtomicU64 = AtomicU64::new(0);
    let n = SERIAL.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("m3d-chaos-{}-{n}", std::process::id()))
}

/// The fault-free reference run, computed once.
fn reference() -> &'static FlowReport {
    static REF: OnceLock<FlowReport> = OnceLock::new();
    REF.get_or_init(|| {
        let r = supervisor().run();
        assert!(r.closed(), "reference run must close: {:?}", r.disposition);
        r
    })
}

/// Exact bit patterns of the run's numerics.
fn fingerprint(r: &FlowReport) -> Vec<u64> {
    let res = r.result.as_ref().expect("closed runs carry a result");
    vec![
        r.clock_ps.to_bits(),
        r.utilization.to_bits(),
        res.wns_ps.to_bits(),
        res.footprint_um2.to_bits(),
        res.wirelength_um.to_bits(),
        res.total_power_mw().to_bits(),
        res.cell_count as u64,
    ]
}

/// The (stage, rung) sequence of successful attempts — the run's
/// effective execution history.
fn successes(r: &FlowReport) -> Vec<(FlowStage, u32)> {
    r.attempts
        .iter()
        .filter(|a| a.error.is_none())
        .map(|a| (a.stage, a.rung))
        .collect()
}

const STAGES: [&str; 7] = [
    "library",
    "synth",
    "place",
    "preroute",
    "route",
    "postroute",
    "signoff",
];

/// Derives a random fault plan from one 64-bit seed (SplitMix64).
fn plan_from_seed(mut state: u64) -> FaultPlan {
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut plan = FaultPlan::new();
    let faults = 1 + (next() % 4) as usize;
    for _ in 0..faults {
        let stage = STAGES[(next() % STAGES.len() as u64) as usize];
        let invocation = 1 + (next() % 3) as u32;
        plan = match next() % 5 {
            0 => plan.fail_stage(stage, invocation),
            1 => plan.panic_stage(stage, invocation),
            2 => plan.delay_stage(stage, invocation, Duration::from_millis(5)),
            3 => plan.corrupt_checkpoint_after(stage, invocation),
            _ => plan.kill_at(stage, invocation),
        };
    }
    plan
}

/// The disposition is self-consistent: closed dispositions carry a
/// result, failures don't, and failure errors name a real cause.
fn assert_valid(r: &FlowReport) -> Result<(), TestCaseError> {
    match &r.disposition {
        Disposition::Closed => {
            prop_assert!(r.result.is_some(), "Closed without a result");
        }
        Disposition::ClosedDegraded { relaxations } => {
            prop_assert!(r.result.is_some(), "ClosedDegraded without a result");
            prop_assert!(!relaxations.is_empty(), "degraded with no relaxations");
        }
        Disposition::Failed { error, .. } => {
            prop_assert!(r.result.is_none(), "Failed with a result");
            prop_assert!(!error.to_string().is_empty());
        }
    }
    if let Some(res) = &r.result {
        prop_assert!(res.total_power_mw() > 0.0, "closed run has no power");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]

    #[test]
    fn any_fault_plan_terminates_validly_and_kills_are_recoverable(
        seed in 0u64..1_000_000_000,
    ) {
        let dir = ckpt_dir();
        let first = supervisor()
            .with_checkpoints(&dir)
            .expect("checkpoint dir opens")
            .with_faults(plan_from_seed(seed))
            .run();
        assert_valid(&first)?;

        // A kill shows up as an Interrupted failure; everything else
        // ends the run for good (absorbed, degraded, or failed).
        let killed = matches!(
            &first.disposition,
            Disposition::Failed { error: FlowError::Interrupted { .. }, .. }
        );
        let last = if killed {
            // Resume the killed run; when nothing durable was written
            // yet (killed before the first snapshot, or every snapshot
            // corrupt), the documented recovery is a fresh start.
            let resumed = match FlowSupervisor::resume_from(&dir) {
                Ok(sup) => sup.run(),
                Err(FlowError::CorruptCheckpoint { .. }) => supervisor().run(),
                Err(other) => {
                    prop_assert!(false, "resume failed untyped: {other}");
                    unreachable!()
                }
            };
            assert_valid(&resumed)?;
            // The fault plan died with the killed process: the resumed
            // leg must close.
            prop_assert!(
                resumed.closed(),
                "fault-free resume leg failed: {:?} (seed {seed})",
                resumed.disposition
            );
            resumed
        } else {
            first
        };

        if last.closed() {
            // No lost and no double-run stages: an undegraded close has
            // exactly the fault-free success history and bit-identical
            // numerics. (Degraded closes legitimately re-run stages on
            // higher rungs, so only the result invariant applies there.)
            if matches!(last.disposition, Disposition::Closed) {
                prop_assert_eq!(successes(&last), successes(reference()));
                prop_assert_eq!(fingerprint(&last), fingerprint(reference()));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------
// Persistent-store chaos: random torn writes (kills mid-publish),
// corrupted entries and injected I/O failures against the disk tier,
// with a "restart" (fresh store instance over the surviving directory)
// after every faulted epoch.
// ---------------------------------------------------------------------

/// The distinct flow keys the store chaos publishes — one per
/// benchmark, each with a deterministic expected value.
const STORE_BENCHES: [Benchmark; 5] = [
    Benchmark::Fpu,
    Benchmark::Aes,
    Benchmark::Ldpc,
    Benchmark::Des,
    Benchmark::M256,
];

fn store_key(bench: Benchmark) -> FlowKey {
    FlowKey::of(bench, DesignStyle::Tmi, &cfg())
}

/// The deterministic artifact for one key: what every publish writes
/// and therefore the only value any hit may ever carry.
fn store_value(bench: Benchmark, idx: usize) -> monolith3d::FlowResult {
    monolith3d::FlowResult {
        bench,
        style: DesignStyle::Tmi,
        node_id: NodeId::N45,
        clock_ps: 1250.0 + idx as f64,
        footprint_um2: 3321.5,
        core_um: (57.6, 57.66),
        cell_count: 1000 + idx,
        buffer_count: 87,
        utilization: 0.68,
        wirelength_um: 98_765.4,
        wns_ps: 3.25,
        hold_wns_ps: 1.5,
        power: m3d_power::PowerReport {
            cell_mw: 1.25,
            wire_mw: 0.75,
            pin_mw: 0.5,
            leakage_mw: 0.05,
            wire_cap_pf: 12.0,
            pin_cap_pf: 8.0,
        },
        layer_usage: m3d_route::LayerUsage {
            m1_um: 100.0,
            local_um: 5000.0,
            intermediate_um: 3000.0,
            global_um: 400.0,
            peak_utilization: [0.9, 0.7, 0.3],
            mean_utilization: [0.4, 0.3, 0.1],
            overflow_ratio: 0.0,
        },
        wlm_curve: vec![1.0, 1.5, 2.25],
    }
}

/// Derives a random store fault plan from one seed: 1-4 faults of
/// random kinds landing on random publishes of the epoch.
fn store_plan_from_seed(mut state: u64) -> StoreFaultPlan {
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut plan = StoreFaultPlan::new();
    let faults = 1 + (next() % 4) as u32;
    for _ in 0..faults {
        let publish = 1 + (next() % STORE_BENCHES.len() as u64) as u32;
        plan = match next() % 3 {
            0 => plan.torn_write_on(publish),
            1 => plan.corrupt_entry_on(publish),
            _ => plan.unwritable_on(publish),
        };
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]

    /// Kill-and-restart chaos for the disk tier: publish a batch of
    /// artifacts with random torn writes / corruptions / I/O failures
    /// injected, then "restart the process" — a fresh `DiskStore` over
    /// the surviving directory — and read everything back. A load may
    /// miss (the fault cost us the entry) but may NEVER return a value
    /// other than the one published for that key; a repair epoch with
    /// no faults must then converge the directory to fully warm.
    #[test]
    fn store_faults_never_surface_as_corrupt_hits(seed in 0u64..1_000_000_000) {
        let dir = ckpt_dir(); // fresh per case, same uniqueness scheme
        let faulted = DiskStore::with_faults(&dir, u64::MAX, store_plan_from_seed(seed));
        for (i, b) in STORE_BENCHES.iter().enumerate() {
            faulted.store_flow(&store_key(*b), &store_value(*b, i));
        }

        // Restart #1: whatever survived the faulted epoch must verify.
        let restarted = DiskStore::open(&dir);
        for (i, b) in STORE_BENCHES.iter().enumerate() {
            if let Some(got) = restarted.load_flow(&store_key(*b)) {
                prop_assert_eq!(got, store_value(*b, i));
            }
        }

        // Repair epoch: a fault-free process republishes every key...
        for (i, b) in STORE_BENCHES.iter().enumerate() {
            restarted.store_flow(&store_key(*b), &store_value(*b, i));
        }
        prop_assert!(!restarted.is_degraded(), "repair epoch saw no real I/O failure");

        // ...so restart #2 serves every key, bit-exactly.
        let warm = DiskStore::open(&dir);
        for (i, b) in STORE_BENCHES.iter().enumerate() {
            let got = warm.load_flow(&store_key(*b));
            prop_assert!(got.is_some(), "key {} must be warm after repair", i);
            prop_assert_eq!(got.expect("checked"), store_value(*b, i));
        }
        let c = warm.counters();
        prop_assert_eq!((c.hits, c.misses), (STORE_BENCHES.len() as u64, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
