//! Chaos harness for the flow supervisor: randomly generated fault
//! plans — injected errors, panics, delays, checkpoint corruption and
//! process kills at random stages/invocations — driven through a
//! checkpointed supervised run plus (when killed) a resume leg.
//!
//! Invariants asserted for every generated plan:
//!
//! * the supervisor always terminates with a valid [`Disposition`]
//!   (closed runs carry a result, failed runs don't) and never panics;
//! * a kill is always recoverable: `resume_from` either continues the
//!   run or reports a typed `CorruptCheckpoint` (nothing durable yet),
//!   in which case a fresh run finishes the job;
//! * resume never loses or double-runs a completed stage — the
//!   successful attempt records of the final run match the fault-free
//!   history whenever closure needed no degradation;
//! * any run that closes as `Closed` (undegraded) is bit-identical to
//!   the fault-free run.
//!
//! Case count defaults low for the local test suite; CI's seeded chaos
//! job raises it via `CHAOS_CASES` (the vendored proptest draws cases
//! deterministically from the test path, so a count is a full replay).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use m3d_netlist::{BenchScale, Benchmark};
use m3d_tech::{DesignStyle, NodeId};
use monolith3d::{
    Disposition, FaultPlan, FlowConfig, FlowError, FlowReport, FlowStage, FlowSupervisor,
};
use proptest::prelude::*;

fn cfg() -> FlowConfig {
    FlowConfig::new(NodeId::N45).scale(BenchScale::Small)
}

fn supervisor() -> FlowSupervisor {
    FlowSupervisor::new(Benchmark::Aes, DesignStyle::TwoD, cfg())
}

/// Number of chaos cases: `CHAOS_CASES` (CI sets 256+), default 24.
fn chaos_cases() -> u32 {
    std::env::var("CHAOS_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

fn ckpt_dir() -> PathBuf {
    static SERIAL: AtomicU64 = AtomicU64::new(0);
    let n = SERIAL.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("m3d-chaos-{}-{n}", std::process::id()))
}

/// The fault-free reference run, computed once.
fn reference() -> &'static FlowReport {
    static REF: OnceLock<FlowReport> = OnceLock::new();
    REF.get_or_init(|| {
        let r = supervisor().run();
        assert!(r.closed(), "reference run must close: {:?}", r.disposition);
        r
    })
}

/// Exact bit patterns of the run's numerics.
fn fingerprint(r: &FlowReport) -> Vec<u64> {
    let res = r.result.as_ref().expect("closed runs carry a result");
    vec![
        r.clock_ps.to_bits(),
        r.utilization.to_bits(),
        res.wns_ps.to_bits(),
        res.footprint_um2.to_bits(),
        res.wirelength_um.to_bits(),
        res.total_power_mw().to_bits(),
        res.cell_count as u64,
    ]
}

/// The (stage, rung) sequence of successful attempts — the run's
/// effective execution history.
fn successes(r: &FlowReport) -> Vec<(FlowStage, u32)> {
    r.attempts
        .iter()
        .filter(|a| a.error.is_none())
        .map(|a| (a.stage, a.rung))
        .collect()
}

const STAGES: [&str; 7] = [
    "library",
    "synth",
    "place",
    "preroute",
    "route",
    "postroute",
    "signoff",
];

/// Derives a random fault plan from one 64-bit seed (SplitMix64).
fn plan_from_seed(mut state: u64) -> FaultPlan {
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut plan = FaultPlan::new();
    let faults = 1 + (next() % 4) as usize;
    for _ in 0..faults {
        let stage = STAGES[(next() % STAGES.len() as u64) as usize];
        let invocation = 1 + (next() % 3) as u32;
        plan = match next() % 5 {
            0 => plan.fail_stage(stage, invocation),
            1 => plan.panic_stage(stage, invocation),
            2 => plan.delay_stage(stage, invocation, Duration::from_millis(5)),
            3 => plan.corrupt_checkpoint_after(stage, invocation),
            _ => plan.kill_at(stage, invocation),
        };
    }
    plan
}

/// The disposition is self-consistent: closed dispositions carry a
/// result, failures don't, and failure errors name a real cause.
fn assert_valid(r: &FlowReport) -> Result<(), TestCaseError> {
    match &r.disposition {
        Disposition::Closed => {
            prop_assert!(r.result.is_some(), "Closed without a result");
        }
        Disposition::ClosedDegraded { relaxations } => {
            prop_assert!(r.result.is_some(), "ClosedDegraded without a result");
            prop_assert!(!relaxations.is_empty(), "degraded with no relaxations");
        }
        Disposition::Failed { error, .. } => {
            prop_assert!(r.result.is_none(), "Failed with a result");
            prop_assert!(!error.to_string().is_empty());
        }
    }
    if let Some(res) = &r.result {
        prop_assert!(res.total_power_mw() > 0.0, "closed run has no power");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]

    #[test]
    fn any_fault_plan_terminates_validly_and_kills_are_recoverable(
        seed in 0u64..1_000_000_000,
    ) {
        let dir = ckpt_dir();
        let first = supervisor()
            .with_checkpoints(&dir)
            .expect("checkpoint dir opens")
            .with_faults(plan_from_seed(seed))
            .run();
        assert_valid(&first)?;

        // A kill shows up as an Interrupted failure; everything else
        // ends the run for good (absorbed, degraded, or failed).
        let killed = matches!(
            &first.disposition,
            Disposition::Failed { error: FlowError::Interrupted { .. }, .. }
        );
        let last = if killed {
            // Resume the killed run; when nothing durable was written
            // yet (killed before the first snapshot, or every snapshot
            // corrupt), the documented recovery is a fresh start.
            let resumed = match FlowSupervisor::resume_from(&dir) {
                Ok(sup) => sup.run(),
                Err(FlowError::CorruptCheckpoint { .. }) => supervisor().run(),
                Err(other) => {
                    prop_assert!(false, "resume failed untyped: {other}");
                    unreachable!()
                }
            };
            assert_valid(&resumed)?;
            // The fault plan died with the killed process: the resumed
            // leg must close.
            prop_assert!(
                resumed.closed(),
                "fault-free resume leg failed: {:?} (seed {seed})",
                resumed.disposition
            );
            resumed
        } else {
            first
        };

        if last.closed() {
            // No lost and no double-run stages: an undegraded close has
            // exactly the fault-free success history and bit-identical
            // numerics. (Degraded closes legitimately re-run stages on
            // higher rungs, so only the result invariant applies there.)
            if matches!(last.disposition, Disposition::Closed) {
                prop_assert_eq!(successes(&last), successes(reference()));
                prop_assert_eq!(fingerprint(&last), fingerprint(reference()));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
