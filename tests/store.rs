//! Adversarial integration tests of the persistent content-addressed
//! artifact store: arbitrary single-byte corruption and truncation of
//! on-disk entries, quarantine naming, concurrent same-directory
//! instances (the multi-process stand-in), and graceful degradation
//! when the store directory cannot be written.
//!
//! The store's contract under attack is *miss, never lie*: a damaged
//! entry may cost a rebuild, but no sequence of byte-level corruption
//! may ever surface as a cache hit carrying wrong data, and no I/O
//! failure may ever fail a run.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use m3d_cells::CellLibrary;
use m3d_netlist::{BenchScale, Benchmark};
use m3d_power::PowerReport;
use m3d_route::LayerUsage;
use m3d_tech::{DesignStyle, NodeId, TechNode};
use monolith3d::{
    DiskStore, EventKind, FlowConfig, FlowKey, FlowResult, LibraryKey, Recorder, VecRecorder,
};
use proptest::prelude::*;

fn temp_root(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("m3d-store-it-{tag}-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn sample_result(cell_count: usize) -> FlowResult {
    FlowResult {
        bench: Benchmark::Des,
        style: DesignStyle::Tmi,
        node_id: NodeId::N45,
        clock_ps: 1250.0,
        footprint_um2: 3321.5,
        core_um: (57.6, 57.66),
        cell_count,
        buffer_count: 87,
        utilization: 0.68,
        wirelength_um: 98_765.4,
        wns_ps: 3.25,
        hold_wns_ps: 1.5,
        power: PowerReport {
            cell_mw: 1.25,
            wire_mw: 0.75,
            pin_mw: 0.5,
            leakage_mw: 0.05,
            wire_cap_pf: 12.0,
            pin_cap_pf: 8.0,
        },
        layer_usage: LayerUsage {
            m1_um: 100.0,
            local_um: 5000.0,
            intermediate_um: 3000.0,
            global_um: 400.0,
            peak_utilization: [0.9, 0.7, 0.3],
            mean_utilization: [0.4, 0.3, 0.1],
            overflow_ratio: 0.0,
        },
        wlm_curve: vec![1.0, 1.5, 2.25, 3.375],
    }
}

fn flow_key() -> FlowKey {
    FlowKey::of(
        Benchmark::Des,
        DesignStyle::Tmi,
        &FlowConfig::new(NodeId::N45).scale(BenchScale::Small),
    )
}

/// The one `.m3d` entry file under `root` (excluding quarantine).
fn entry_file(root: &Path) -> PathBuf {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
        let Ok(rd) = fs::read_dir(dir) else { return };
        for e in rd.flatten() {
            let p = e.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "quarantine") {
                    continue;
                }
                walk(&p, out);
            } else if p.extension().is_some_and(|x| x == "m3d") {
                out.push(p);
            }
        }
    }
    let mut found = Vec::new();
    walk(root, &mut found);
    assert_eq!(found.len(), 1, "expected exactly one entry under {root:?}");
    found.remove(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flipping ANY single byte of an on-disk entry — magic, length,
    /// checksum or payload — is never served as a hit: the entry is
    /// quarantined and the slot reports a miss, so callers rebuild.
    #[test]
    fn any_single_byte_flip_is_never_a_hit(pos in 0usize..1 << 20, flip in 0u8..255) {
        let root = temp_root("flip");
        let key = flow_key();
        DiskStore::open(&root).store_flow(&key, &sample_result(4321));
        let path = entry_file(&root);
        let mut bytes = fs::read(&path).expect("entry readable");
        let i = pos % bytes.len();
        bytes[i] ^= flip.wrapping_add(1); // xor mask in 1..=255: the byte really changes
        fs::write(&path, &bytes).expect("corruption lands");

        // A fresh instance over the same directory — as a second
        // process would see it.
        let store = DiskStore::open(&root);
        let got = store.load_flow(&key);
        prop_assert!(got.is_none(), "byte {} flipped -> must miss, got {:?}", i, got);
        let c = store.counters();
        prop_assert_eq!((c.hits, c.misses, c.quarantined), (0, 1, 1));
        prop_assert!(!store.is_degraded(), "corruption must not degrade the store");
        let _ = fs::remove_dir_all(&root);
    }

    /// Truncating an entry at ANY length (including zero) is never a
    /// hit either.
    #[test]
    fn any_truncation_is_never_a_hit(cut in 0usize..1 << 20) {
        let root = temp_root("trunc");
        let key = flow_key();
        DiskStore::open(&root).store_flow(&key, &sample_result(4321));
        let path = entry_file(&root);
        let bytes = fs::read(&path).expect("entry readable");
        let keep = cut % bytes.len(); // 0..len, strictly shorter
        fs::write(&path, &bytes[..keep]).expect("truncation lands");

        let store = DiskStore::open(&root);
        let got = store.load_flow(&key);
        prop_assert!(
            got.is_none(),
            "{} of {} bytes kept -> must miss, got {:?}",
            keep,
            bytes.len(),
            got
        );
        prop_assert_eq!(store.counters().quarantined, 1);
        let _ = fs::remove_dir_all(&root);
    }
}

/// The quarantined copy keeps the key-hash filename, so an operator can
/// map a quarantined file back to the artifact that produced it.
#[test]
fn quarantined_file_preserves_the_entry_name() {
    let root = temp_root("qname");
    let key = flow_key();
    DiskStore::open(&root).store_flow(&key, &sample_result(4321));
    let path = entry_file(&root);
    let name = path.file_name().expect("entry has a name").to_owned();
    let mut bytes = fs::read(&path).expect("entry readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&path, &bytes).expect("corruption lands");

    let store = DiskStore::open(&root);
    assert_eq!(store.load_flow(&key), None);
    let quarantined: Vec<_> = fs::read_dir(store.quarantine_dir())
        .expect("quarantine dir exists")
        .flatten()
        .map(|e| e.file_name())
        .collect();
    assert_eq!(quarantined, vec![name]);
    assert!(!path.exists(), "corrupt entry removed from the live tree");
    let _ = fs::remove_dir_all(&root);
}

/// A library entry survives the trip through a *fresh process image*
/// (new store instance, no shared in-memory state) bit-exactly.
#[test]
fn library_survives_a_fresh_instance_bit_exactly() {
    let root = temp_root("librt");
    let key = LibraryKey::new(NodeId::N45, DesignStyle::Tmi, false, 1.0);
    let node = TechNode::for_id(NodeId::N45);
    let lib = CellLibrary::try_build(&node, DesignStyle::Tmi).expect("library builds");
    DiskStore::open(&root).store_library(&key, &lib);

    let fresh = DiskStore::open(&root);
    let back = fresh.load_library(&key).expect("warm instance hits");
    assert_eq!(back.len(), lib.len());
    for ((name_a, a), (name_b, b)) in back.iter().zip(lib.iter()) {
        assert_eq!(name_a, name_b);
        assert_eq!(a, b, "cell {name_a:?} differs after the disk trip");
    }
    let _ = fs::remove_dir_all(&root);
}

/// Many store instances over one directory — the multi-process case —
/// publishing and reading the same key concurrently: every load is
/// either a miss or the correct value, never torn or mixed data, and
/// the directory ends healthy (a final fresh instance serves the key).
#[test]
fn concurrent_instances_over_one_directory_never_serve_torn_data() {
    let root = temp_root("mproc");
    let key = flow_key();
    let want = sample_result(4321);
    let threads = 8;
    let rounds = 25;

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                // Each thread owns its own instance, as a separate
                // process would.
                let store = DiskStore::open(&root);
                for _ in 0..rounds {
                    store.store_flow(&key, &want);
                    if let Some(got) = store.load_flow(&key) {
                        assert_eq!(got, want, "a concurrent reader saw wrong data");
                    }
                    assert!(!store.is_degraded(), "contention is not an I/O failure");
                }
            });
        }
    });

    let fresh = DiskStore::open(&root);
    assert_eq!(fresh.load_flow(&key), Some(want), "directory ends healthy");
    assert_eq!(fresh.counters().quarantined, 0, "no entry was ever corrupt");
    let _ = fs::remove_dir_all(&root);
}

/// An unwritable store directory degrades the store to a traced no-op:
/// publishes are dropped, loads miss, exactly one `StoreDegraded` event
/// fires, and nothing panics. (The root's parent is a regular *file*,
/// which denies directory creation even when running as root — chmod
/// tricks don't, thanks to CAP_DAC_OVERRIDE.)
#[test]
fn unwritable_directory_degrades_gracefully_with_one_traced_event() {
    let blocker = temp_root("rofile");
    fs::create_dir_all(blocker.parent().expect("tmp parent")).expect("tmp exists");
    fs::write(&blocker, b"not a directory").expect("blocker file");
    let root = blocker.join("store"); // path *through* a regular file

    let store = DiskStore::open(&root); // opening never fails...
    let sink = Arc::new(VecRecorder::new());
    store.set_recorder(Arc::clone(&sink) as Arc<dyn Recorder>);
    let key = flow_key();
    assert_eq!(store.load_flow(&key), None, "cold miss, not an error");

    store.store_flow(&key, &sample_result(4321)); // ...the first write degrades
    assert!(store.is_degraded());
    store.store_flow(&key, &sample_result(4321)); // further ops are silent no-ops
    assert_eq!(store.load_flow(&key), None);

    let degraded = sink
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::StoreDegraded { .. }))
        .count();
    assert_eq!(degraded, 1, "exactly one StoreDegraded event");
    let _ = fs::remove_file(&blocker);
}
