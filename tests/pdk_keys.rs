//! Property tests of the cache/store key discipline across the PDK
//! registry: every registered node's `LibraryKey`/`FlowKey` round-trips
//! its artifact bit-exactly through the `DiskStore` codec, and no two
//! distinct registered PDKs can ever serve each other's disk entries —
//! a 7 nm run over a 45 nm store directory (or an FDSOI run over
//! either) must miss cleanly and rebuild, never answer with the wrong
//! node's data.
//!
//! The registry is open: these tests iterate `PdkRegistry::global()`
//! rather than a hard-coded node list, so a future plug-in node is
//! covered the moment it registers.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use m3d_cells::CellLibrary;
use m3d_netlist::{BenchScale, Benchmark};
use m3d_power::PowerReport;
use m3d_route::LayerUsage;
use m3d_tech::{DesignStyle, NodeId, PdkRegistry, TechNode};
use monolith3d::{DiskStore, FlowConfig, FlowKey, FlowResult, LibraryKey};
use proptest::prelude::*;

fn temp_root(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("m3d-pdk-keys-{tag}-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn registered_nodes() -> Vec<NodeId> {
    let ids = PdkRegistry::global().ids();
    assert!(
        ids.len() >= 3,
        "expected at least the two paper nodes plus fdsoi-miv"
    );
    ids
}

/// Characterized libraries are expensive; build each registered node's
/// T-MI library once and share it across proptest cases.
fn library_for(id: NodeId) -> CellLibrary {
    static LIBS: OnceLock<Mutex<HashMap<NodeId, CellLibrary>>> = OnceLock::new();
    let libs = LIBS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut libs = libs.lock().expect("library cache lock");
    libs.entry(id)
        .or_insert_with(|| {
            let node = TechNode::try_for_id(id).expect("registered node has a TechNode");
            CellLibrary::try_build(&node, DesignStyle::Tmi).expect("registered node builds")
        })
        .clone()
}

/// A synthetic flow result stamped with the node it claims to be from,
/// so a cross-served entry would be observable.
fn result_for(id: NodeId, cell_count: usize) -> FlowResult {
    FlowResult {
        bench: Benchmark::Des,
        style: DesignStyle::Tmi,
        node_id: id,
        clock_ps: 1250.0,
        footprint_um2: 3321.5,
        core_um: (57.6, 57.66),
        cell_count,
        buffer_count: 87,
        utilization: 0.68,
        wirelength_um: 98_765.4,
        wns_ps: 3.25,
        hold_wns_ps: 1.5,
        power: PowerReport {
            cell_mw: 1.25,
            wire_mw: 0.75,
            pin_mw: 0.5,
            leakage_mw: 0.05,
            wire_cap_pf: 12.0,
            pin_cap_pf: 8.0,
        },
        layer_usage: LayerUsage {
            m1_um: 100.0,
            local_um: 5000.0,
            intermediate_um: 3000.0,
            global_um: 400.0,
            peak_utilization: [0.9, 0.7, 0.3],
            mean_utilization: [0.4, 0.3, 0.1],
            overflow_ratio: 0.0,
        },
        wlm_curve: vec![1.0, 1.5, 2.25, 3.375],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For every registered PDK: its library round-trips bit-exactly
    /// under its own `LibraryKey`, and the same key re-targeted to any
    /// *other* registered node reads as a clean miss — never the first
    /// node's cells.
    #[test]
    fn library_keys_round_trip_and_never_cross_serve(
        node_idx in 0usize..16,
        rho_bit in 0u32..2,
        pin_scale_milli in 500u32..2000,
    ) {
        let ids = registered_nodes();
        let id = ids[node_idx % ids.len()];
        let rho = rho_bit == 1;
        let pin_scale = pin_scale_milli as f64 / 1000.0;
        let root = temp_root("lib");
        let store = DiskStore::open(&root);

        let lib = library_for(id);
        let key = LibraryKey::new(id, DesignStyle::Tmi, rho, pin_scale);
        store.store_library(&key, &lib);

        let back = store.load_library(&key).expect("own key hits");
        prop_assert_eq!(back.node().id, id);
        prop_assert_eq!(back.len(), lib.len());
        for ((name_a, a), (name_b, b)) in back.iter().zip(lib.iter()) {
            prop_assert_eq!(name_a, name_b);
            prop_assert_eq!(a, b);
        }

        for &other in ids.iter().filter(|&&o| o != id) {
            let foreign = LibraryKey::new(other, DesignStyle::Tmi, rho, pin_scale);
            prop_assert!(
                store.load_library(&foreign).is_none(),
                "{} must not serve a library stored by {}",
                other.label(),
                id.label()
            );
        }
        // Cross-node lookups are clean misses, not quarantines: the
        // keys address different entries, so nothing was damaged.
        prop_assert_eq!(store.counters().quarantined, 0);
        let _ = fs::remove_dir_all(&root);
    }

    /// Same discipline for flow results: every registered node's
    /// `FlowKey` round-trips its result bit-exactly, and re-keying the
    /// identical configuration to another registered node misses.
    #[test]
    fn flow_keys_round_trip_and_never_cross_serve(
        node_idx in 0usize..16,
        cell_count in 1usize..100_000,
        util_pct in 40u32..90,
    ) {
        let ids = registered_nodes();
        let id = ids[node_idx % ids.len()];
        let root = temp_root("flow");
        let store = DiskStore::open(&root);

        let mut cfg = FlowConfig::new(id).scale(BenchScale::Small);
        cfg.utilization = Some(util_pct as f64 / 100.0);
        let key = FlowKey::of(Benchmark::Des, DesignStyle::Tmi, &cfg);
        let want = result_for(id, cell_count);
        store.store_flow(&key, &want);

        let back = store.load_flow(&key).expect("own key hits");
        prop_assert_eq!(&back, &want);

        for &other in ids.iter().filter(|&&o| o != id) {
            let mut foreign_cfg = FlowConfig::new(other).scale(BenchScale::Small);
            foreign_cfg.utilization = Some(util_pct as f64 / 100.0);
            let foreign = FlowKey::of(Benchmark::Des, DesignStyle::Tmi, &foreign_cfg);
            prop_assert!(
                store.load_flow(&foreign).is_none(),
                "{} must not serve a flow stored by {}",
                other.label(),
                id.label()
            );
        }
        prop_assert_eq!(store.counters().quarantined, 0);
        let _ = fs::remove_dir_all(&root);
    }
}

/// Exhaustive (non-random) pairing: every ordered pair of distinct
/// registered PDKs shares one store directory, each stores under its
/// own key, and each reads back only its own artifact.
#[test]
fn every_registered_pair_keeps_its_entries_apart() {
    let ids = registered_nodes();
    for &a in &ids {
        for &b in &ids {
            if a == b {
                continue;
            }
            let root = temp_root("pair");
            let store = DiskStore::open(&root);
            let key_a = FlowKey::of(
                Benchmark::Aes,
                DesignStyle::TwoD,
                &FlowConfig::new(a).scale(BenchScale::Small),
            );
            let key_b = FlowKey::of(
                Benchmark::Aes,
                DesignStyle::TwoD,
                &FlowConfig::new(b).scale(BenchScale::Small),
            );
            store.store_flow(&key_a, &result_for(a, 111));
            store.store_flow(&key_b, &result_for(b, 222));
            let got_a = store.load_flow(&key_a).expect("a hits");
            let got_b = store.load_flow(&key_b).expect("b hits");
            assert_eq!(got_a.node_id, a, "{} served foreign data", a.label());
            assert_eq!(got_b.node_id, b, "{} served foreign data", b.label());
            assert_eq!(got_a.cell_count, 111);
            assert_eq!(got_b.cell_count, 222);
            let _ = fs::remove_dir_all(&root);
        }
    }
}
