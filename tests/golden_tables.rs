//! Golden-output regression test: the smoke-subset `paper_tables`
//! stdout is pinned byte-for-byte against a committed snapshot, so a
//! numeric drift anywhere in the flow (cell models, placement,
//! routing, power) fails CI instead of silently landing in the next
//! regenerated `paper_tables_output.txt`.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_tables
//! ```

use std::path::PathBuf;

use m3d_bench::{node_drivers, paper_drivers, SMOKE_SUBSET};
use m3d_netlist::BenchScale;
use m3d_tech::NodeId;

fn golden_path() -> PathBuf {
    golden_file("paper_tables_subset_small.txt")
}

fn golden_file(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

/// Exactly what `paper_tables --small --subset` prints to stdout: the
/// registry-ordered subset drivers, each under its banner line. (The
/// binary's `--jobs` fan-out only pre-warms the cache; stdout is
/// byte-identical with or without it.)
fn render_subset() -> String {
    let mut out = String::new();
    for (name, driver) in paper_drivers() {
        if !SMOKE_SUBSET.contains(&name) {
            continue;
        }
        out.push_str(&format!(
            "==================== {name} ====================\n"
        ));
        out.push_str(&driver(BenchScale::Small));
        out.push('\n');
    }
    out
}

/// Exactly what `paper_tables --small --subset --node NAME` prints:
/// the node-generic drivers in `SMOKE_SUBSET` order, retargeted to
/// `node`, each under its banner line.
fn render_subset_at(node: NodeId) -> String {
    let mut out = String::new();
    for (name, driver) in node_drivers() {
        out.push_str(&format!(
            "==================== {name} ====================\n"
        ));
        out.push_str(&driver(node, BenchScale::Small));
        out.push('\n');
    }
    out
}

fn check_against_golden(got: &str, path: &PathBuf) {
    if std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(path, got).expect("write golden snapshot");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); \
             run `UPDATE_GOLDEN=1 cargo test --test golden_tables` to create it",
            path.display()
        )
    });
    if got != want {
        // Point at the first divergent line rather than dumping both
        // multi-kilobyte documents.
        let line = got
            .lines()
            .zip(want.lines())
            .position(|(g, w)| g != w)
            .map(|i| i + 1);
        match line {
            Some(n) => {
                let g = got.lines().nth(n - 1).unwrap_or("<eof>");
                let w = want.lines().nth(n - 1).unwrap_or("<eof>");
                panic!(
                    "smoke-subset output drifted from the golden snapshot at line {n}:\n \
                     got:  {g}\n want: {w}\n\
                     If the change is intentional, regenerate with \
                     `UPDATE_GOLDEN=1 cargo test --test golden_tables`."
                );
            }
            None => panic!(
                "smoke-subset output drifted in length only: {} vs {} lines \
                 (trailing content changed). Regenerate with UPDATE_GOLDEN=1 if intended.",
                got.lines().count(),
                want.lines().count()
            ),
        }
    }
}

#[test]
fn smoke_subset_stdout_matches_the_committed_golden_snapshot() {
    check_against_golden(&render_subset(), &golden_path());
}

/// The `--node 45nm` path must render the *same bytes per driver* as
/// the classic registry: the node-generic drivers delegate to the
/// classic paper-titled functions at the 45 nm default.
#[test]
fn node_drivers_at_45nm_match_their_classic_counterparts() {
    let classic = paper_drivers();
    for (name, driver) in node_drivers() {
        let (_, classic_driver) = classic
            .iter()
            .find(|(n, _)| *n == name)
            .expect("node driver has a classic counterpart");
        assert_eq!(
            driver(NodeId::N45, BenchScale::Small),
            classic_driver(BenchScale::Small),
            "--node 45nm drifted from the classic '{name}' driver"
        );
    }
}

/// The 7 nm `--node` subset is pinned against its own committed
/// snapshot, the golden the CI node-matrix job compares the binary's
/// stdout to.
#[test]
fn node_subset_at_7nm_matches_the_committed_golden_snapshot() {
    check_against_golden(
        &render_subset_at(NodeId::N7),
        &golden_file("paper_tables_subset_small_7nm.txt"),
    );
}

/// Same pin for the 45 nm `--node` path: per-driver bytes are classic
/// (the test above), and the whole-document ordering/banners are
/// pinned here for the CI golden-stdout comparison.
#[test]
fn node_subset_at_45nm_matches_the_committed_golden_snapshot() {
    check_against_golden(
        &render_subset_at(NodeId::N45),
        &golden_file("paper_tables_subset_small_45nm.txt"),
    );
}
