//! Golden-output regression test: the smoke-subset `paper_tables`
//! stdout is pinned byte-for-byte against a committed snapshot, so a
//! numeric drift anywhere in the flow (cell models, placement,
//! routing, power) fails CI instead of silently landing in the next
//! regenerated `paper_tables_output.txt`.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_tables
//! ```

use std::path::PathBuf;

use m3d_bench::{paper_drivers, SMOKE_SUBSET};
use m3d_netlist::BenchScale;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("paper_tables_subset_small.txt")
}

/// Exactly what `paper_tables --small --subset` prints to stdout: the
/// registry-ordered subset drivers, each under its banner line. (The
/// binary's `--jobs` fan-out only pre-warms the cache; stdout is
/// byte-identical with or without it.)
fn render_subset() -> String {
    let mut out = String::new();
    for (name, driver) in paper_drivers() {
        if !SMOKE_SUBSET.contains(&name) {
            continue;
        }
        out.push_str(&format!(
            "==================== {name} ====================\n"
        ));
        out.push_str(&driver(BenchScale::Small));
        out.push('\n');
    }
    out
}

#[test]
fn smoke_subset_stdout_matches_the_committed_golden_snapshot() {
    let got = render_subset();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &got).expect("write golden snapshot");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); \
             run `UPDATE_GOLDEN=1 cargo test --test golden_tables` to create it",
            path.display()
        )
    });
    if got != want {
        // Point at the first divergent line rather than dumping both
        // multi-kilobyte documents.
        let line = got
            .lines()
            .zip(want.lines())
            .position(|(g, w)| g != w)
            .map(|i| i + 1);
        match line {
            Some(n) => {
                let g = got.lines().nth(n - 1).unwrap_or("<eof>");
                let w = want.lines().nth(n - 1).unwrap_or("<eof>");
                panic!(
                    "smoke-subset output drifted from the golden snapshot at line {n}:\n \
                     got:  {g}\n want: {w}\n\
                     If the change is intentional, regenerate with \
                     `UPDATE_GOLDEN=1 cargo test --test golden_tables`."
                );
            }
            None => panic!(
                "smoke-subset output drifted in length only: {} vs {} lines \
                 (trailing content changed). Regenerate with UPDATE_GOLDEN=1 if intended.",
                got.lines().count(),
                want.lines().count()
            ),
        }
    }
}
