//! The paper's qualitative claims, asserted as executable facts.

use m3d_cells::{layout::generate_layout, CellFunction, CellLibrary, Signal, Topology};
use m3d_extract::{extract_cell, TopSiliconModel};
use m3d_netlist::{BenchScale, Benchmark};
use m3d_place::Placer;
use m3d_synth::WireLoadModel;
use m3d_tech::{DesignStyle, MetalClass, MetalStack, StackKind, TechNode};

fn signal_r(node: &TechNode, f: CellFunction, style: DesignStyle) -> f64 {
    let topo = Topology::for_function(f);
    let g = generate_layout(node, &topo, style, 1);
    let e = extract_cell(node, &g.shapes, TopSiliconModel::Dielectric);
    e.node_r
        .iter()
        .filter(|(&n, _)| n != Signal::Vdd.node_id() && n != Signal::Vss.node_id())
        .map(|(_, v)| v)
        .sum()
}

/// Section 1: "monolithic inter-tier vias are very small ... with almost
/// negligible parasitic RC".
#[test]
fn claim_mivs_are_negligible() {
    let node = TechNode::n45();
    // An MIV versus 10 um of local wire.
    let stack = MetalStack::new(&node, StackKind::Tmi);
    let m2 = stack.by_name("M2").expect("M2");
    let wire = m3d_tech::WireRc::for_layer(&node, m2);
    assert!(node.miv.resistance < 0.2 * wire.resistance(10.0));
    assert!(node.miv.capacitance < 0.2 * wire.capacitance(10.0));
}

/// Section 3.2: folding cuts the cell footprint by 40 % (not 50 %,
/// because of P/N mismatch and MIV keep-out).
#[test]
fn claim_cell_footprint_reduces_40_percent() {
    let node = TechNode::n45();
    for f in [CellFunction::Inv, CellFunction::Xor2, CellFunction::Dff] {
        let topo = Topology::for_function(f);
        let a2 = generate_layout(&node, &topo, DesignStyle::TwoD, 1).area_um2();
        let a3 = generate_layout(&node, &topo, DesignStyle::Tmi, 1).area_um2();
        let reduction = 1.0 - a3 / a2;
        assert!((reduction - 0.40).abs() < 1e-9, "{f:?}: {reduction}");
    }
}

/// Table 1: simple cells get *better* internal R in 3D; the DFF gets
/// worse.
#[test]
fn claim_table1_rc_directions() {
    let node = TechNode::n45();
    for f in [CellFunction::Inv, CellFunction::Nand2, CellFunction::Mux2] {
        assert!(
            signal_r(&node, f, DesignStyle::Tmi) < signal_r(&node, f, DesignStyle::TwoD),
            "{f:?} should improve in 3D"
        );
    }
    assert!(
        signal_r(&node, CellFunction::Dff, DesignStyle::Tmi)
            > signal_r(&node, CellFunction::Dff, DesignStyle::TwoD),
        "the DFF should get worse in 3D"
    );
}

/// Section 3.2: the top-silicon models bracket the coupling — conductor
/// underestimates, dielectric overestimates.
#[test]
fn claim_top_silicon_bracketing() {
    let node = TechNode::n45();
    for f in [CellFunction::Inv, CellFunction::Nand2, CellFunction::Dff] {
        let topo = Topology::for_function(f);
        let g = generate_layout(&node, &topo, DesignStyle::Tmi, 1);
        let die = extract_cell(&node, &g.shapes, TopSiliconModel::Dielectric);
        let con = extract_cell(&node, &g.shapes, TopSiliconModel::Conductor);
        assert!(die.total_c() > con.total_c(), "{f:?}");
    }
}

/// Section 3.4: T-MI wire load models are 20-30 % shorter than 2D ones.
#[test]
fn claim_tmi_wlm_is_shorter() {
    let node = TechNode::n45();
    let lib2 = CellLibrary::build(&node, DesignStyle::TwoD);
    let lib3 = CellLibrary::build(&node, DesignStyle::Tmi);
    let n2 = Benchmark::Aes.generate(&lib2, BenchScale::Small);
    let n3 = Benchmark::Aes.generate(&lib3, BenchScale::Small);
    let w2 = WireLoadModel::from_placement(&n2, &Placer::new(&lib2).iterations(16).place(&n2));
    let w3 = WireLoadModel::from_placement(&n3, &Placer::new(&lib3).iterations(16).place(&n3));
    let ratio = w3.estimate_um(2) / w2.estimate_um(2);
    assert!(
        (0.6..0.95).contains(&ratio),
        "T-MI/2D WLM ratio {ratio} (paper: wires 20-30% shorter)"
    );
}

/// Section 3.3: the T-MI stack's extra capacity is local-only; the
/// intermediate/global track count is unchanged.
#[test]
fn claim_stack_capacity_shape() {
    let node = TechNode::n45();
    let s2 = MetalStack::new(&node, StackKind::TwoD);
    let s3 = MetalStack::new(&node, StackKind::Tmi);
    assert!(
        s3.track_supply_per_um(MetalClass::Local) > 2.0 * s2.track_supply_per_um(MetalClass::Local)
    );
    assert_eq!(
        s3.track_supply_per_um(MetalClass::Global),
        s2.track_supply_per_um(MetalClass::Global)
    );
}

/// Section 5: at 7 nm the local layers become very resistive while the
/// global layers degrade far less (the ITRS size-effect story).
#[test]
fn claim_7nm_local_resistance_blowup() {
    let n45 = TechNode::n45();
    let n7 = TechNode::n7();
    let r = |node: &TechNode, name: &str| {
        let stack = MetalStack::new(node, StackKind::TwoD);
        let l = stack.by_name(name).expect("layer");
        m3d_tech::WireRc::for_layer(node, l).r_per_um
    };
    let local_growth = r(&n7, "M2") / r(&n45, "M2");
    let global_growth = r(&n7, "M8") / r(&n45, "M8");
    assert!(local_growth > 100.0, "local growth {local_growth}");
    assert!(global_growth < 30.0, "global growth {global_growth}");
}

/// Section 4.3: LDPC's wiring is wire-cap dominated while DES's is
/// pin-cap dominated — visible already in the placed netlists.
#[test]
fn claim_ldpc_wire_dominated_des_pin_dominated() {
    let node = TechNode::n45();
    let lib = CellLibrary::build(&node, DesignStyle::TwoD);
    let avg_net = |bench: Benchmark| {
        let n = bench.generate(&lib, BenchScale::Small);
        let p = Placer::new(&lib)
            .utilization(bench.target_utilization())
            .iterations(40)
            .place(&n);
        p.total_hpwl_um(&n) / n.net_count() as f64
    };
    let ldpc = avg_net(Benchmark::Ldpc);
    let des = avg_net(Benchmark::Des);
    // At reduced test scale the contrast is ~1.8x; at paper scale ~7x.
    assert!(
        ldpc > 1.5 * des,
        "LDPC avg net {ldpc:.1} um should dwarf DES {des:.1} um"
    );
}
