//! Integration tests for the resource governor (DESIGN.md §14):
//! cooperative cancellation, deadline-bounded termination, graceful
//! drain with a persisted remainder, and the governance event stream.
//!
//! The properties pinned here are the governor's whole contract:
//!
//! * **bounded termination** — a governed run whose workers are wedged
//!   by a `StuckStage` fault still returns within the run deadline plus
//!   watchdog slack, with every pending slot carrying a typed
//!   [`PointOutcome`], never a hang or a panic;
//! * **clean cancellation** — a *cooperative* wedge is cancelled
//!   without abandoning its thread (no `StageAbandoned` in the trace),
//!   while a non-cooperative one (a plain `Delay` sleeping through the
//!   grace window) is detached and reported;
//! * **cancellation purity** — cancelling a run at a random epoch and
//!   then re-running to completion over the same memory+disk cache
//!   yields numerics bit-identical to a never-cancelled run, with
//!   nothing quarantined and the store healthy;
//! * **drain round trip** — `drain()` finishes the in-flight point,
//!   persists the unstarted remainder through the checkpoint codec, and
//!   a follow-up run over the loaded remainder completes the plan,
//!   again bit-identically;
//! * **trace hygiene** — the new governance events survive the JSONL
//!   schema validator alongside the classic stage/cache stream.

use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use m3d_netlist::{BenchScale, Benchmark};
use m3d_tech::{DesignStyle, NodeId};
use monolith3d::govern::load_remainder;
use monolith3d::observe::validate_jsonl;
use monolith3d::{
    AdmissionError, AdmissionQueue, ArtifactCache, Backpressure, DiskStore, EventKind,
    ExperimentPlan, FaultPlan, FlowConfig, FlowResult, JsonlRecorder, ParallelExecutor,
    PointOutcome, Priority, Recorder, RunGovernor, StageDeadlines, Tee, VecRecorder,
};
use proptest::prelude::*;

fn cfg() -> FlowConfig {
    FlowConfig::new(NodeId::N45).scale(BenchScale::Small)
}

/// The four-point matrix every test governs: the DES comparison pair
/// plus two singles — small enough to stay fast, wide enough that a
/// cancelled run genuinely leaves points unstarted.
fn plan() -> ExperimentPlan {
    let mut plan = ExperimentPlan::new();
    plan.push_comparison(Benchmark::Des, &cfg());
    plan.push(Benchmark::Aes, DesignStyle::TwoD, cfg());
    plan.push(Benchmark::Ldpc, DesignStyle::TwoD, cfg());
    plan
}

/// The never-governed reference results for [`plan`], computed once on
/// a private cache. `FlowResult`'s `PartialEq` compares every `f64`
/// exactly, so equality against these is a bit-identity check.
fn reference() -> &'static Vec<FlowResult> {
    static REF: OnceLock<Vec<FlowResult>> = OnceLock::new();
    REF.get_or_init(|| {
        let p = plan();
        let report = ParallelExecutor::new(2)
            .with_cache(Arc::new(ArtifactCache::default()))
            .run(&p);
        report
            .results
            .into_iter()
            .map(|r| r.expect("reference point closes"))
            .collect()
    })
}

fn scratch_dir(label: &str) -> PathBuf {
    static SERIAL: AtomicU64 = AtomicU64::new(0);
    let n = SERIAL.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("m3d-govern-{label}-{}-{n}", std::process::id()))
}

/// Number of purity cases: `GOVERN_CASES` (CI raises it), default 6.
fn govern_cases() -> u32 {
    std::env::var("GOVERN_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
}

/// An in-memory `Write` target for `JsonlRecorder`, shareable between
/// the recorder (which owns a boxed clone) and the test.
#[derive(Clone, Default, Debug)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().expect("buf lock").clone()).expect("utf-8 trace")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buf lock").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The acceptance property: a run deadline bounds wall-clock even when
/// every worker is wedged by a stuck stage, and the pending slots come
/// back as typed `DeadlineExceeded` outcomes — not errors, not hangs.
#[test]
fn run_deadline_bounds_a_wedged_run() {
    let deadline = Duration::from_millis(300);
    let gov = RunGovernor::new()
        .with_run_deadline(deadline)
        .with_faults(FaultPlan::new().stuck_stage("synth", 1));
    let exec = ParallelExecutor::new(2).with_cache(Arc::new(ArtifactCache::default()));
    let p = plan();
    let t = Instant::now();
    let report = exec.run_governed(&p, &gov);
    let elapsed = t.elapsed();
    // Budget + one watchdog tick + cancel grace, with generous CI
    // slack — the point is "milliseconds, not forever".
    assert!(
        elapsed < deadline + Duration::from_secs(5),
        "wedged governed run must terminate promptly, took {elapsed:?}"
    );
    assert_eq!(report.outcomes.len(), p.len(), "every slot typed");
    assert_eq!(report.done_count(), 0, "every point was wedged");
    assert_eq!(
        report.count("deadline_exceeded"),
        p.len(),
        "a blown run deadline types every pending slot: {:?}",
        report.outcomes
    );
    assert!(report.is_partial());
    assert!(
        report.first_error().is_none(),
        "governor interventions are outcomes, not errors"
    );
}

/// A run deadline of zero — the server's "request arrived already
/// expired" shape — types every point `deadline_exceeded` before any
/// stage work starts: no library characterizes, no 15 ms watchdog
/// slice is waited, no worker thread is spawned for a doomed attempt.
#[test]
fn zero_run_deadline_rejects_points_before_any_work() {
    let cache = Arc::new(ArtifactCache::default());
    let gov = RunGovernor::new().with_run_deadline(Duration::ZERO);
    let exec = ParallelExecutor::new(2).with_cache(Arc::clone(&cache));
    let p = plan();
    let t = Instant::now();
    let report = exec.run_governed(&p, &gov);
    let elapsed = t.elapsed();
    assert_eq!(report.done_count(), 0);
    assert_eq!(
        report.count("deadline_exceeded"),
        p.len(),
        "outcomes: {:?}",
        report.outcomes
    );
    assert_eq!(
        cache.stats().library_builds,
        0,
        "an expired deadline must not start characterization"
    );
    // Generous CI slack; the real bound (no sliced waits on the
    // rejection path) is pinned at unit level in `govern::tests`.
    assert!(
        elapsed < Duration::from_secs(2),
        "instant rejection took {elapsed:?}"
    );
}

/// A cooperative wedge (`StuckStage` parks on the cancel token) is won
/// by cancellation with a clean join: the trace carries the cancel and
/// per-point events but no `StageAbandoned`. Explicit cancel, not
/// deadline, so the reason string is pinned too.
#[test]
fn stuck_stage_cancels_cleanly_without_abandoning_a_thread() {
    let recorder = Arc::new(VecRecorder::new());
    let cache = Arc::new(ArtifactCache::default());
    cache.set_recorder(Arc::clone(&recorder) as Arc<dyn Recorder>);
    let gov = RunGovernor::new().with_faults(FaultPlan::new().stuck_stage("synth", 1));
    let exec = ParallelExecutor::new(2).with_cache(cache);
    let p = plan();
    let report = thread::scope(|s| {
        let h = s.spawn(|| exec.run_governed(&p, &gov));
        thread::sleep(Duration::from_millis(80));
        gov.cancel();
        h.join().expect("governed run returns")
    });
    assert_eq!(report.done_count(), 0);
    assert_eq!(report.count("cancelled"), p.len());
    let events = recorder.events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::CancelRequested { reason: "explicit" })),
        "explicit cancel must be announced"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::PointCancelled { .. })),
        "never-started slots must be reported"
    );
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.kind, EventKind::StageAbandoned { .. })),
        "a cooperative wedge must join cleanly, not be abandoned"
    );
}

/// A non-cooperative wedge — a plain `Delay` sleeping straight through
/// the cancel and the grace window — is detached and reported as
/// `StageAbandoned`, the typed record of the watchdog's former silent
/// thread leak. Governed points run under the strict (fail-fast)
/// policy, so the blown stage fails the point with a typed
/// `DeadlineExceeded` error rather than hanging behind the sleeper.
#[test]
fn non_cooperative_wedge_is_abandoned_and_reported() {
    let recorder = Arc::new(VecRecorder::new());
    let cache = Arc::new(ArtifactCache::default());
    cache.set_recorder(Arc::clone(&recorder) as Arc<dyn Recorder>);
    let gov = RunGovernor::new()
        .with_stage_deadlines(StageDeadlines::uniform(5_000).with_stage("route", 40))
        .with_faults(FaultPlan::new().delay_stage("route", 1, Duration::from_millis(400)));
    let exec = ParallelExecutor::new(1).with_cache(cache);
    let mut p = ExperimentPlan::new();
    p.push(Benchmark::Des, DesignStyle::TwoD, cfg());
    let report = exec.run_governed(&p, &gov);
    assert_eq!(report.count("failed"), 1, "outcomes: {:?}", report.outcomes);
    assert!(
        matches!(
            report.first_error(),
            Some(monolith3d::FlowError::DeadlineExceeded { budget_ms: 40, .. })
        ),
        "the blown budget surfaces as a typed error: {:?}",
        report.first_error()
    );
    let abandoned: Vec<_> = recorder
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::StageAbandoned {
                stage, budget_ms, ..
            } => Some((stage, budget_ms)),
            _ => None,
        })
        .collect();
    assert!(
        !abandoned.is_empty(),
        "a worker sleeping through the grace window must be reported"
    );
    for (stage, budget_ms) in abandoned {
        assert_eq!(stage.key(), "route");
        assert_eq!(budget_ms, 40);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: govern_cases(),
        .. ProptestConfig::default()
    })]

    /// Cancellation purity: cancel a governed run at a random epoch,
    /// then run the same plan ungoverned over the same memory+disk
    /// cache. The follow-up must be bit-identical to the never-cancelled
    /// reference, the store must stay healthy, and whatever the governed
    /// run *did* complete must already agree with the reference.
    #[test]
    fn cancelled_runs_leave_a_pure_cache(delay_ms in 0u64..140) {
        let dir = scratch_dir("purity");
        let cache = Arc::new(ArtifactCache::default());
        cache.attach_disk(DiskStore::open(&dir));
        let gov = RunGovernor::new();
        let exec = ParallelExecutor::new(2).with_cache(Arc::clone(&cache));
        let p = plan();
        let governed = thread::scope(|s| {
            let h = s.spawn(|| exec.run_governed(&p, &gov));
            thread::sleep(Duration::from_millis(delay_ms));
            gov.cancel();
            h.join().expect("governed run returns")
        });
        // Whatever completed before the cancel is already canonical.
        for (i, outcome) in governed.outcomes.iter().enumerate() {
            if let PointOutcome::Done(r) = outcome {
                prop_assert_eq!(r.as_ref(), &reference()[i]);
            }
        }
        // The follow-up run over the same cache closes everything,
        // bit-identically to a run that was never cancelled.
        let rerun = exec.run(&p);
        prop_assert_eq!(rerun.ok_count(), p.len());
        for (i, r) in rerun.results.iter().enumerate() {
            let r = r.as_ref().expect("rerun point closes");
            prop_assert_eq!(r, &reference()[i]);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.disk_quarantined, 0);
        prop_assert_eq!(stats.store_degraded, 0);
        cache.detach_disk();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Drain round trip: `drain()` lets the in-flight point finish, types
/// the rest `Drained`, persists the remainder through the checkpoint
/// codec, and a second process (here: a second executor call) loads the
/// remainder and completes the plan bit-identically.
#[test]
fn drain_persists_a_remainder_a_follow_up_run_completes() {
    let dir = scratch_dir("drain");
    std::fs::create_dir_all(&dir).expect("drain dir");
    let cache = Arc::new(ArtifactCache::default());
    let gov = RunGovernor::new()
        .with_drain_dir(&dir)
        .with_faults(FaultPlan::new().slow_stage("synth", 1, Duration::from_millis(300)));
    let exec = ParallelExecutor::new(1).with_cache(Arc::clone(&cache));
    let p = plan();
    let report = thread::scope(|s| {
        let h = s.spawn(|| exec.run_governed(&p, &gov));
        thread::sleep(Duration::from_millis(60));
        gov.drain();
        h.join().expect("governed run returns")
    });
    // One worker, first point stalled 300 ms, drain at 60 ms: at most
    // the in-flight point completed, everything else drained cleanly.
    assert!(
        report.count("drained") >= p.len() - 1,
        "expected a mostly-drained run, got {:?}",
        report.outcomes
    );
    assert_eq!(
        report.done_count() + report.count("drained"),
        p.len(),
        "a clean drain has only done and drained slots: {:?}",
        report.outcomes
    );
    assert_eq!(report.remainder.len(), report.count("drained"));
    let path = report
        .remainder_path
        .as_ref()
        .expect("clean drain with a drain dir persists the remainder");
    let resumed = load_remainder(path).expect("remainder loads back");
    assert_eq!(
        resumed.points(),
        &report.remainder[..],
        "codec round trip preserves the remainder in order"
    );
    // "Later process" leg: complete the remainder over the same cache
    // and check the union against the never-drained reference.
    let follow_up = exec.run(&resumed);
    assert_eq!(follow_up.ok_count(), resumed.len());
    for (i, point) in p.points().iter().enumerate() {
        let expected = &reference()[i];
        match &report.outcomes[i] {
            PointOutcome::Done(r) => assert_eq!(r.as_ref(), expected, "pre-drain slot {i}"),
            PointOutcome::Drained => {
                let j = resumed
                    .points()
                    .iter()
                    .position(|q| q == point)
                    .expect("drained point is in the remainder");
                let r = follow_up.results[j].as_ref().expect("resumed point closes");
                assert_eq!(r, expected, "resumed slot {i}");
            }
            other => panic!("unexpected outcome for slot {i}: {other:?}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The governance events ride the same JSONL pipeline as everything
/// else: a trace containing cancels, drains and per-point outcomes
/// passes the schema validator end to end.
#[test]
fn governed_traces_pass_the_schema_validator() {
    let buf = SharedBuf::default();
    let jsonl = Arc::new(JsonlRecorder::new(Box::new(buf.clone())));
    let vec = Arc::new(VecRecorder::new());
    let cache = Arc::new(ArtifactCache::default());
    cache.set_recorder(Arc::new(Tee::new(
        Arc::clone(&jsonl) as Arc<dyn Recorder>,
        Arc::clone(&vec) as Arc<dyn Recorder>,
    )));
    let exec = ParallelExecutor::new(2).with_cache(Arc::clone(&cache));
    let p = plan();

    // Leg 1: a deadline-cancelled run (stuck workers).
    let gov = RunGovernor::new()
        .with_run_deadline(Duration::from_millis(150))
        .with_faults(FaultPlan::new().stuck_stage("synth", 1));
    let report = exec.run_governed(&p, &gov);
    assert_eq!(report.done_count(), 0);

    // Leg 2: a drained run over the same recorder.
    let gov2 = RunGovernor::new();
    gov2.drain();
    let drained = exec.run_governed(&p, &gov2);
    assert_eq!(drained.count("drained"), p.len());

    jsonl.flush().expect("trace flushes");
    let trace = buf.contents();
    let summary = validate_jsonl(&trace).expect("governed trace validates");
    assert_eq!(summary.events, vec.events().len(), "one line per event");
    for kind in [
        "cancel_requested",
        "point_cancelled",
        "drain_started",
        "drain_finished",
    ] {
        assert!(
            trace.contains(&format!("\"kind\":\"{kind}\"")),
            "trace must carry a {kind} event"
        );
    }
}

/// Admission decisions trace through the recorder with typed reasons:
/// quota exhaustion, a full queue under `Reject`, and a draining queue.
#[test]
fn admission_queue_emits_typed_rejection_events() {
    let recorder = Arc::new(VecRecorder::new());
    let queue = AdmissionQueue::new(1, Backpressure::Reject)
        .with_quota(1)
        .with_recorder(Arc::clone(&recorder) as Arc<dyn Recorder>);
    let point = || plan().points().first().expect("plan has points").clone();
    queue
        .submit(7, Priority::Normal, point())
        .expect("first submission admits");
    assert_eq!(
        queue.submit(7, Priority::Normal, point()),
        Err(AdmissionError::QuotaExhausted {
            client: 7,
            quota: 1
        })
    );
    assert_eq!(
        queue.submit(8, Priority::High, point()),
        Err(AdmissionError::QueueFull { capacity: 1 })
    );
    let rest = queue.drain();
    assert_eq!(rest.len(), 1, "drain hands back the queued point");
    assert_eq!(
        queue.submit(9, Priority::Low, point()),
        Err(AdmissionError::Draining)
    );
    let kinds: Vec<_> = recorder.events().iter().map(|e| e.kind.name()).collect();
    assert_eq!(
        kinds,
        vec![
            "quota_exhausted",
            "admission_rejected",
            "admission_rejected"
        ],
        "each rejection traces exactly once"
    );
    let reasons: Vec<_> = recorder
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::AdmissionRejected { client, reason } => Some((client, reason)),
            _ => None,
        })
        .collect();
    assert_eq!(reasons, vec![(8, "queue_full"), (9, "draining")]);
}
