//! Crash-recovery integration tests: a supervised flow killed mid-run
//! must resume from its durable checkpoints at the first incomplete
//! stage — re-running no completed stage — and close with numerics
//! bit-identical to an uninterrupted run. Corrupt snapshots are
//! quarantined and resume falls back to the next older one.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use m3d_netlist::{BenchScale, Benchmark};
use m3d_tech::{DesignStyle, NodeId};
use monolith3d::{
    CheckpointStore, Disposition, FaultPlan, FlowConfig, FlowError, FlowReport, FlowStage,
    FlowSupervisor,
};

fn cfg() -> FlowConfig {
    FlowConfig::new(NodeId::N45).scale(BenchScale::Small)
}

fn supervisor() -> FlowSupervisor {
    FlowSupervisor::new(Benchmark::Aes, DesignStyle::TwoD, cfg())
}

/// A fresh per-test checkpoint directory under the system temp dir.
fn ckpt_dir(tag: &str) -> PathBuf {
    static SERIAL: AtomicU64 = AtomicU64::new(0);
    let n = SERIAL.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("m3d-ckpt-{tag}-{}-{n}", std::process::id()))
}

/// The run's numerics as exact bit patterns — equality here means
/// bit-identical results, not approximately-equal floats.
fn fingerprint(r: &FlowReport) -> Vec<u64> {
    let res = r.result.as_ref().expect("closed runs carry a result");
    vec![
        r.clock_ps.to_bits(),
        r.utilization.to_bits(),
        res.clock_ps.to_bits(),
        res.wns_ps.to_bits(),
        res.hold_wns_ps.to_bits(),
        res.footprint_um2.to_bits(),
        res.wirelength_um.to_bits(),
        res.total_power_mw().to_bits(),
        res.cell_count as u64,
        res.buffer_count as u64,
    ]
}

#[test]
fn killed_run_resumes_without_rerunning_completed_stages() {
    let baseline = supervisor().run();
    assert!(baseline.closed(), "baseline: {:?}", baseline.disposition);

    // Kill the process (as far as the engine can tell) at routing entry.
    let dir = ckpt_dir("kill");
    let interrupted = supervisor()
        .with_checkpoints(&dir)
        .expect("checkpoint dir opens")
        .with_faults(FaultPlan::new().kill_at("route", 1))
        .run();
    match &interrupted.disposition {
        Disposition::Failed { stage, error } => {
            assert_eq!(*stage, FlowStage::Routing);
            assert!(
                matches!(error, FlowError::Interrupted { .. }),
                "a kill is an interruption, got {error}"
            );
        }
        other => panic!("expected Failed/Interrupted, got {other:?}"),
    }
    // The kill left no routing record and durable snapshots on disk.
    assert_eq!(interrupted.stage_attempts("route"), 0);
    assert!(interrupted.stage_attempts("synth") >= 1);
    let store = CheckpointStore::open(&dir).expect("store reopens");
    assert!(
        !store.snapshot_paths().is_empty(),
        "completed stages left snapshots"
    );

    let resumed = FlowSupervisor::resume_from(&dir)
        .expect("a killed run resumes")
        .run();
    assert_eq!(resumed.disposition, Disposition::Closed);

    // No completed stage re-ran: the resumed report opens with exactly
    // the crashed run's records (restored from the snapshot)...
    assert_eq!(
        resumed.attempts[..interrupted.attempts.len()],
        interrupted.attempts[..],
        "restored records must match the crashed run's prefix"
    );
    // ...and the stitched-together history is the uninterrupted one: no
    // stage lost, none double-run.
    assert_eq!(resumed.attempts, baseline.attempts);

    // Bit-identical numerics.
    assert_eq!(fingerprint(&resumed), fingerprint(&baseline));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_newest_snapshot_is_quarantined_and_resume_falls_back() {
    let baseline = supervisor().run();
    assert!(baseline.closed(), "baseline: {:?}", baseline.disposition);

    // Corrupt the snapshot written after routing completes, then kill at
    // post-route: the newest snapshot on disk is now damaged.
    let dir = ckpt_dir("corrupt");
    let interrupted = supervisor()
        .with_checkpoints(&dir)
        .expect("checkpoint dir opens")
        .with_faults(
            FaultPlan::new()
                .corrupt_checkpoint_after("route", 1)
                .kill_at("postroute", 1),
        )
        .run();
    assert!(!interrupted.closed());

    // Resume detects the damage, quarantines the file, and falls back to
    // the next older snapshot — re-running just the affected stage.
    let resumed = FlowSupervisor::resume_from(&dir)
        .expect("an older snapshot still verifies")
        .run();
    assert!(resumed.closed(), "resumed: {:?}", resumed.disposition);
    assert!(
        resumed
            .checkpoint_incidents
            .iter()
            .any(|e| matches!(e, FlowError::CorruptCheckpoint { .. })),
        "the quarantined snapshot is surfaced: {:?}",
        resumed.checkpoint_incidents
    );
    let store = CheckpointStore::open(&dir).expect("store reopens");
    let quarantined = std::fs::read_dir(store.quarantine_dir())
        .map(|d| d.count())
        .unwrap_or(0);
    assert_eq!(quarantined, 1, "exactly the damaged file is quarantined");

    // The re-run of the rolled-back stage is deterministic, so the full
    // history and the numerics still match an uninterrupted run exactly.
    assert_eq!(resumed.attempts, baseline.attempts);
    assert_eq!(fingerprint(&resumed), fingerprint(&baseline));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpointing_does_not_change_the_result() {
    let plain = supervisor().run();
    let dir = ckpt_dir("noop");
    let checkpointed = supervisor()
        .with_checkpoints(&dir)
        .expect("checkpoint dir opens")
        .run();
    assert_eq!(checkpointed.disposition, plain.disposition);
    assert_eq!(checkpointed.attempts, plain.attempts);
    assert_eq!(fingerprint(&checkpointed), fingerprint(&plain));
    assert!(checkpointed.checkpoint_incidents.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_from_an_empty_directory_is_a_typed_error() {
    let dir = ckpt_dir("empty");
    std::fs::create_dir_all(&dir).expect("temp dir");
    match FlowSupervisor::resume_from(&dir) {
        Err(FlowError::CorruptCheckpoint { .. }) => {}
        other => panic!("expected CorruptCheckpoint, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_with_every_snapshot_corrupt_is_a_typed_error() {
    let dir = ckpt_dir("allbad");
    let interrupted = supervisor()
        .with_checkpoints(&dir)
        .expect("checkpoint dir opens")
        .with_faults(FaultPlan::new().kill_at("place", 1))
        .run();
    assert!(!interrupted.closed());

    // Damage every snapshot the crashed run left behind.
    let store = CheckpointStore::open(&dir).expect("store reopens");
    assert!(!store.snapshot_paths().is_empty());
    for path in store.snapshot_paths() {
        std::fs::write(&path, b"not a checkpoint").expect("overwrite snapshot");
    }
    match FlowSupervisor::resume_from(&dir) {
        Err(FlowError::CorruptCheckpoint { .. }) => {}
        other => panic!("expected CorruptCheckpoint, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
