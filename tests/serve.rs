//! Integration tests for the m3d-serve experiment server: protocol
//! robustness under hostile frames, cross-connection coalescing,
//! per-client quotas, instant deadline rejection, and graceful drain
//! with remainder persistence.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Barrier, OnceLock};
use std::time::{Duration, Instant};

use m3d_serve::client::{response_error, response_ok, ClientStream};
use m3d_serve::{Listen, Server, ServerConfig, MAX_FRAME};
use monolith3d::{
    json_raw_field, json_str_field, load_remainder, ArtifactCache, Backpressure, REMAINDER_FILE,
};
use proptest::prelude::*;

fn scratch_dir(label: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("m3d-serve-{label}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A server on its own unix socket with its own cache (never the
/// global one — these tests count builds).
fn start(
    label: &str,
    cfg_tune: impl FnOnce(&mut ServerConfig),
) -> (Server, PathBuf, Arc<ArtifactCache>) {
    let dir = scratch_dir(label);
    let sock = dir.join("m3d.sock");
    let cache = Arc::new(ArtifactCache::bounded(16, 64));
    let mut cfg = ServerConfig {
        listen: vec![Listen::Unix(sock.clone())],
        dispatchers: 2,
        ..ServerConfig::default()
    };
    cfg_tune(&mut cfg);
    let server = Server::start_on(cfg, Arc::clone(&cache)).expect("server starts");
    (server, sock, cache)
}

fn connect(sock: &std::path::Path) -> ClientStream {
    // The accept loop may not have bound by the time the test connects.
    let t0 = Instant::now();
    loop {
        match ClientStream::connect_unix(sock) {
            Ok(c) => return c,
            Err(e) if t0.elapsed() < Duration::from_secs(5) => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("cannot connect to {}: {e}", sock.display()),
        }
    }
}

const RUN_DES_3D: &str =
    "{\"id\":1,\"op\":\"run\",\"bench\":\"DES\",\"style\":\"3D\",\"scale\":\"small\"}";

#[test]
fn ping_and_stats_round_trip() {
    let (server, sock, _cache) = start("ping", |_| {});
    let mut c = connect(&sock);
    let pong = c.request("{\"id\":7,\"op\":\"ping\"}").expect("pong");
    assert!(response_ok(&pong), "{pong}");
    assert_eq!(json_raw_field(&pong, "id"), Some("7"));
    let stats = c.request("{\"id\":8,\"op\":\"stats\"}").expect("stats");
    assert!(response_ok(&stats), "{stats}");
    assert_eq!(json_raw_field(&stats, "draining"), Some("false"));
    assert_eq!(json_raw_field(&stats, "requests"), Some("2"));
    drop(c);
    server.shutdown();
    server.join();
}

#[test]
fn garbage_frames_get_typed_errors_and_the_connection_survives() {
    let (server, sock, _cache) = start("garbage", |_| {});
    let mut c = connect(&sock);
    let cases: [(&str, &str); 5] = [
        ("not json at all", "bad_frame"),
        ("{\"id\":12}", "bad_frame"),
        ("{\"op\":\"ping\"}", "bad_frame"),
        ("{\"id\":1,\"op\":\"reboot\"}", "bad_request"),
        (
            "{\"id\":1,\"op\":\"run\",\"bench\":\"Z80\",\"style\":\"2D\"}",
            "bad_request",
        ),
    ];
    for (line, class) in cases {
        let resp = c.request(line).expect("typed error, not a hangup");
        assert!(!response_ok(&resp), "{line:?} -> {resp}");
        assert_eq!(
            response_error(&resp).as_deref(),
            Some(class),
            "{line:?} -> {resp}"
        );
    }
    // The same connection still serves valid requests afterwards.
    let pong = c.request("{\"id\":99,\"op\":\"ping\"}").expect("pong");
    assert!(response_ok(&pong), "{pong}");
    drop(c);
    server.shutdown();
    server.join();
}

#[test]
fn oversized_frames_answer_typed_error_then_disconnect() {
    let (server, sock, _cache) = start("oversized", |_| {});
    let mut c = connect(&sock);
    let huge = vec![b'a'; MAX_FRAME + 64];
    c.send_raw(&huge).expect("send");
    let resp = c.recv_line().expect("read").expect("one error frame");
    assert_eq!(
        response_error(&resp).as_deref(),
        Some("oversized"),
        "{resp}"
    );
    assert_eq!(c.recv_line().expect("read"), None, "server hangs up after");
    // Other connections are unaffected.
    let mut c2 = connect(&sock);
    let pong = c2.request("{\"id\":1,\"op\":\"ping\"}").expect("pong");
    assert!(response_ok(&pong), "{pong}");
    drop((c, c2));
    server.shutdown();
    server.join();
}

#[test]
fn truncated_frames_and_abrupt_disconnects_leave_the_server_healthy() {
    let (server, sock, _cache) = start("truncated", |_| {});
    for _ in 0..3 {
        let mut c = connect(&sock);
        // Half a frame, no newline, then vanish.
        c.send_raw(b"{\"id\":3,\"op\":\"ru").expect("send");
        drop(c);
    }
    // Non-UTF-8 bytes get a typed bad_frame before the hangup.
    let mut c = connect(&sock);
    c.send_raw(&[0xff, 0xfe, 0x80, b'\n']).expect("send");
    let resp = c.recv_line().expect("read").expect("one error frame");
    assert_eq!(
        response_error(&resp).as_deref(),
        Some("bad_frame"),
        "{resp}"
    );
    drop(c);
    let mut c2 = connect(&sock);
    let pong = c2.request("{\"id\":1,\"op\":\"ping\"}").expect("pong");
    assert!(response_ok(&pong), "{pong}");
    drop(c2);
    server.shutdown();
    server.join();
}

#[test]
fn identical_concurrent_runs_coalesce_to_one_library_build() {
    let (server, sock, cache) = start("coalesce", |cfg| {
        cfg.dispatchers = 4;
    });
    const N: usize = 6;
    let barrier = Arc::new(Barrier::new(N));
    let mut handles = Vec::new();
    for _ in 0..N {
        let sock = sock.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut c = connect(&sock);
            barrier.wait();
            c.request(RUN_DES_3D).expect("run response")
        }));
    }
    let responses: Vec<String> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    for r in &responses {
        assert!(response_ok(r), "{r}");
    }
    // Every submitter sees the same science, byte for byte (ids match
    // because every connection numbered its first request 1).
    for r in &responses[1..] {
        assert_eq!(r, &responses[0]);
    }
    let stats = cache.stats();
    assert_eq!(
        stats.library_builds, 1,
        "{N} identical concurrent runs must characterize one library: {stats:?}"
    );
    server.shutdown();
    server.join();
}

#[test]
fn per_client_quota_rejects_and_drain_persists_a_deduplicated_remainder() {
    let dir = scratch_dir("drain-remainder");
    let (server, sock, _cache) = start("quota-drain", |cfg| {
        // No dispatchers: admitted points stay queued until the drain,
        // so quota and remainder behaviour is deterministic.
        cfg.dispatchers = 0;
        cfg.quota = Some(1);
        cfg.backpressure = Backpressure::Reject;
        cfg.remainder_dir = Some(dir.clone());
    });
    let mut a = connect(&sock);
    let mut b = connect(&sock);
    // A's first point is admitted (no response until the drain); the
    // second trips the per-connection quota.
    a.send_line(RUN_DES_3D).expect("send");
    let resp = a
        .request("{\"id\":2,\"op\":\"run\",\"bench\":\"DES\",\"style\":\"3D\",\"scale\":\"small\"}")
        .expect("quota error");
    assert_eq!(
        response_error(&resp).as_deref(),
        Some("quota_exhausted"),
        "{resp}"
    );
    // B is a different client: the identical point is admitted.
    b.send_line(RUN_DES_3D).expect("send");
    // Give both submits time to land before draining.
    std::thread::sleep(Duration::from_millis(100));
    let pending = server.shutdown();
    assert_eq!(pending, 1, "two identical queued points dedup to one");
    // Both queued requests get a typed drain response.
    for (c, who) in [(&mut a, "a"), (&mut b, "b")] {
        let resp = c.recv_line().expect("read").expect("drain response");
        assert_eq!(
            response_error(&resp).as_deref(),
            Some("draining"),
            "client {who}: {resp}"
        );
    }
    let plan = load_remainder(&dir.join(REMAINDER_FILE)).expect("remainder loads");
    assert_eq!(plan.len(), 1);
    server.join();
}

#[test]
fn zero_deadline_rejects_before_any_queue_wait() {
    let (server, sock, _cache) = start("deadline0", |cfg| {
        // No dispatchers: if the request were queued it would never be
        // answered, so a response at all proves pre-queue rejection.
        cfg.dispatchers = 0;
    });
    let mut c = connect(&sock);
    let t0 = Instant::now();
    let resp = c
        .request(
            "{\"id\":4,\"op\":\"run\",\"bench\":\"DES\",\"style\":\"3D\",\"scale\":\"small\",\"deadline_ms\":0}",
        )
        .expect("instant rejection");
    let elapsed = t0.elapsed();
    assert_eq!(
        response_error(&resp).as_deref(),
        Some("deadline_exceeded"),
        "{resp}"
    );
    assert!(
        elapsed < Duration::from_secs(1),
        "a dead-on-arrival deadline must not wait a wake slice: {elapsed:?}"
    );
    drop(c);
    server.shutdown();
    server.join();
}

#[test]
fn wire_shutdown_reports_pending_and_stops_the_server() {
    let (server, sock, _cache) = start("wire-shutdown", |_| {});
    let mut c = connect(&sock);
    let resp = c.request("{\"id\":5,\"op\":\"shutdown\"}").expect("ack");
    assert!(response_ok(&resp), "{resp}");
    assert_eq!(json_raw_field(&resp, "pending"), Some("0"));
    assert!(server.is_draining());
    server.join();
}

// ---------------------------------------------------------------------
// Property: no byte stream panics the server or wedges the connection.
// ---------------------------------------------------------------------

fn fuzz_server() -> &'static (Server, PathBuf) {
    static SRV: OnceLock<(Server, PathBuf)> = OnceLock::new();
    SRV.get_or_init(|| {
        let (server, sock, _cache) = start("fuzz", |cfg| {
            cfg.dispatchers = 1;
        });
        (server, sock)
    })
}

/// Seeded garbage: printable runs, quotes, backslashes, braces, and
/// raw control/high bytes — newline-free so it arrives as one frame.
fn garbage(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let alphabet: &[u8] = b"{}[]\":\\,id op run bench style\x00\x01\x1f\x7f\x80\xff";
    (0..len)
        .map(|_| {
            let b = alphabet[(rnd() % alphabet.len() as u64) as usize];
            if b == b'\n' {
                b' '
            } else {
                b
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn arbitrary_frames_never_wedge_the_server(seed in 0u64..1_000_000, len in 1usize..300) {
        let (_, sock) = fuzz_server();
        let mut c = connect(sock);
        let mut frame = garbage(seed, len);
        frame.push(b'\n');
        c.send_raw(&frame).expect("send");
        // The server answers with a typed error frame or hangs up
        // cleanly; nothing else.
        match c.recv_line().expect("no transport corruption") {
            Some(resp) => {
                prop_assert!(!response_ok(&resp), "garbage accepted: {resp}");
                prop_assert!(response_error(&resp).is_some(), "untyped error: {resp}");
                prop_assert!(json_str_field(&resp, "detail").is_some(), "no detail: {resp}");
            }
            None => {} // clean disconnect (non-UTF-8 path)
        }
        drop(c);
        // Whatever just happened, the server still serves.
        let mut probe = connect(sock);
        let pong = probe.request("{\"id\":1,\"op\":\"ping\"}").expect("pong");
        prop_assert!(response_ok(&pong), "{pong}");
    }
}
