//! Concurrency tests for the shared `ArtifactCache` and the
//! work-stealing `ParallelExecutor` (DESIGN.md §10).
//!
//! Loom-style stress rather than model checking (the workspace vendors
//! no loom): threads line up on a `Barrier` so they genuinely race, and
//! the assertions are the protocol's invariants — one build per key,
//! no lost counter increments, bit-identical results versus serial.

use std::sync::{Arc, Barrier};
use std::thread;

use m3d_netlist::{BenchScale, Benchmark};
use m3d_tech::{DesignStyle, NodeId};
use monolith3d::{experiments, ArtifactCache, ExperimentPlan, Flow, FlowConfig, ParallelExecutor};

fn small_cfg() -> FlowConfig {
    FlowConfig::new(NodeId::N45).scale(BenchScale::Small)
}

/// N threads racing on one cold `LibraryKey` must coalesce into exactly
/// one characterization, every thread receiving the same artifact.
#[test]
fn racing_library_requests_build_exactly_once() {
    const THREADS: usize = 8;
    let cache = Arc::new(ArtifactCache::default());
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                cache
                    .library(NodeId::N45, DesignStyle::TwoD, false, 1.0)
                    .expect("library builds")
            })
        })
        .collect();
    let libs: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("no panic"))
        .collect();
    for lib in &libs[1..] {
        assert!(
            Arc::ptr_eq(&libs[0], lib),
            "every thread must share the one built artifact"
        );
    }
    let stats = cache.stats();
    assert_eq!(stats.library_builds, 1, "cold key characterized once");
    assert_eq!(
        stats.library_hits,
        (THREADS - 1) as u64,
        "every other request served from the coalesced build"
    );
}

/// Counter increments survive contention: over a mixed-key stress run,
/// `builds + hits` must equal the number of successful requests and
/// `builds` the number of distinct keys.
#[test]
fn library_stats_lose_no_increments_under_contention() {
    const THREADS: usize = 6;
    const ROUNDS: usize = 5;
    let keys = [1.0, 0.9, 0.8];
    let cache = Arc::new(ArtifactCache::default());
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for r in 0..ROUNDS {
                    let scale = keys[(t + r) % keys.len()];
                    cache
                        .library(NodeId::N45, DesignStyle::TwoD, false, scale)
                        .expect("library builds");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no panic");
    }
    let stats = cache.stats();
    let requests = (THREADS * ROUNDS) as u64;
    assert_eq!(
        stats.library_builds + stats.library_hits,
        requests,
        "every request accounted for exactly once"
    );
    assert_eq!(
        stats.library_builds,
        keys.len() as u64,
        "one build per distinct key"
    );
    assert_eq!(cache.len().0, keys.len());
}

/// Racing full flows on one `FlowKey` return equal results and leave
/// the cache with a single coherent entry.
#[test]
fn racing_flow_runs_agree_bitwise() {
    const THREADS: usize = 4;
    let cache = Arc::new(ArtifactCache::default());
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                Flow::new(Benchmark::Des, DesignStyle::TwoD, small_cfg())
                    .try_run_with_cache(&cache)
                    .expect("flow closes")
            })
        })
        .collect();
    let results: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("no panic"))
        .collect();
    for r in &results[1..] {
        // FlowResult's PartialEq compares every f64 exactly, so this is
        // a bit-identity check.
        assert_eq!(&results[0], r, "racing identical flows must agree");
    }
    assert_eq!(cache.len().1, 1, "one coherent entry for the shared key");
}

/// The executor's parallel fan-out must be indistinguishable from a
/// serial walk of the same plan: same results, bit for bit, in plan
/// order.
#[test]
fn parallel_execution_is_bit_identical_to_serial() {
    let mut plan = ExperimentPlan::new();
    plan.push_comparison(Benchmark::Des, &small_cfg());
    plan.push(Benchmark::Aes, DesignStyle::TwoD, small_cfg());

    let serial: Vec<_> = plan
        .points()
        .iter()
        .map(|p| {
            Flow::new(p.bench, p.style, p.config.clone())
                .try_run_with_cache(&Arc::new(ArtifactCache::default()))
                .expect("flow closes")
        })
        .collect();

    let report = ParallelExecutor::new(4)
        .with_cache(Arc::new(ArtifactCache::default()))
        .run(&plan);
    assert_eq!(report.results.len(), serial.len());
    for (i, (par, ser)) in report.results.iter().zip(&serial).enumerate() {
        let par = par.as_ref().expect("parallel point closes");
        assert_eq!(par, &serial[i], "plan point {i} diverged from serial");
        assert_eq!(par.bench, ser.bench);
        assert_eq!(par.style, ser.style);
    }
}

/// The per-driver plans must cover their drivers: after the executor
/// warms the global cache from `plan_for`, the driver itself performs
/// zero flow misses — proving plan enumeration and driver loops walk
/// the same matrix. (Sole test in this binary touching the global
/// cache, so clearing it races nothing.)
#[test]
fn plans_cover_their_drivers() {
    let cache = ArtifactCache::global();
    cache.clear();
    let mut plan = ExperimentPlan::new();
    plan.merge(experiments::plan_for("fig3", BenchScale::Small));
    plan.merge(experiments::plan_for("s5", BenchScale::Small));
    let report = ParallelExecutor::new(2).run(&plan);
    assert_eq!(report.ok_count(), plan.len(), "prewarm closes every point");

    let before = cache.stats();
    let fig3 = experiments::fig3_circuit_character(BenchScale::Small);
    let s5 = experiments::fig_s5_blockage(BenchScale::Small);
    assert!(!fig3.is_empty() && !s5.is_empty());
    let delta = cache.stats().delta(&before);
    assert_eq!(
        delta.flow_misses, 0,
        "a planned-and-prewarmed driver must only hit the cache"
    );
    assert_eq!(delta.library_builds, 0);
}
