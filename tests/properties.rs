//! Property-based integration tests over randomly generated netlists:
//! placement containment, activity bounds, edit consistency.

use std::sync::OnceLock;

use m3d_cells::{layout::generate_layout, CellFunction, CellLibrary, Topology};
use m3d_extract::{extract_cell, TopSiliconModel};
use m3d_geom::{LayerShape, Point, Rect};
use m3d_netlist::{BenchScale, Benchmark, NetId, Netlist, NetlistBuilder};
use m3d_place::Placer;
use m3d_power::propagate_activity;
use m3d_route::Router;
use m3d_tech::{CellLayer, DesignStyle, MetalStack, NodeId, StackKind, TechNode};
use monolith3d::{Flow, FlowConfig, FlowError};
use proptest::prelude::*;

fn lib() -> &'static CellLibrary {
    static LIB: OnceLock<CellLibrary> = OnceLock::new();
    LIB.get_or_init(|| CellLibrary::build(&TechNode::n45(), DesignStyle::TwoD))
}

/// Builds a random layered DAG netlist from a seed.
fn random_netlist(seed: u64, gates: usize) -> Netlist {
    let lib = lib();
    let mut b = NetlistBuilder::new(lib, "random");
    let mut pool: Vec<NetId> = (0..8).map(|_| b.input()).collect();
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let funcs = [
        CellFunction::Inv,
        CellFunction::Nand2,
        CellFunction::Nor2,
        CellFunction::Xor2,
        CellFunction::And2,
        CellFunction::Mux2,
        CellFunction::FullAdder,
    ];
    for _ in 0..gates {
        let f = funcs[(rnd() % funcs.len() as u64) as usize];
        let inputs: Vec<NetId> = (0..f.input_count())
            .map(|_| pool[(rnd() % pool.len() as u64) as usize])
            .collect();
        let outs = b.gate_outputs(f, &inputs);
        pool.extend(outs);
        // Occasionally register a signal.
        if rnd() % 7 == 0 {
            let d = pool[(rnd() % pool.len() as u64) as usize];
            let q = b.dff(d);
            pool.push(q);
        }
    }
    let out = *pool.last().expect("non-empty");
    b.output(out);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_netlists_are_consistent_and_acyclic(seed in 0u64..1000) {
        let n = random_netlist(seed, 150);
        n.check_consistency(lib());
        m3d_netlist::levelize(&n, lib()).expect("builder DAGs are acyclic");
    }

    #[test]
    fn placement_contains_every_cell(seed in 0u64..400) {
        let n = random_netlist(seed, 120);
        let p = Placer::new(lib()).iterations(12).place(&n);
        for id in n.inst_ids() {
            prop_assert!(p.core.contains(p.pos(id)), "cell escaped the core");
        }
        prop_assert!(p.total_hpwl_um(&n) >= 0.0);
    }

    #[test]
    fn routing_covers_every_multi_pin_net(seed in 0u64..200) {
        let node = TechNode::n45();
        let stack = MetalStack::new(&node, StackKind::TwoD);
        let n = random_netlist(seed, 100);
        let p = Placer::new(lib()).iterations(12).place(&n);
        let r = Router::new(&node, &stack).route(&n, &p, lib());
        for id in n.net_ids() {
            let net = n.net(id);
            if !net.sinks.is_empty() {
                prop_assert!(
                    r.net(id).wirelength_um > 0.0,
                    "driven net routed to nothing"
                );
            }
        }
    }

    #[test]
    fn activities_stay_in_bounds(seed in 0u64..400) {
        let n = random_netlist(seed, 150);
        let act = propagate_activity(&n, lib(), 0.3, 0.1);
        for a in &act {
            prop_assert!((0.0..=1.0).contains(&a.p_one), "probability {}", a.p_one);
            prop_assert!((0.0..=2.0).contains(&a.alpha), "activity {}", a.alpha);
        }
    }

    #[test]
    fn adding_a_shape_never_decreases_extracted_capacitance(
        x in 0i64..2000, y in 0i64..1400, w in 50i64..800, h in 50i64..200,
    ) {
        let node = TechNode::n45();
        let topo = Topology::for_function(CellFunction::Nand2);
        let base = generate_layout(&node, &topo, DesignStyle::Tmi, 1);
        let c0 = extract_cell(&node, &base.shapes, TopSiliconModel::Dielectric).total_c();
        let mut bigger = base.shapes.clone();
        bigger.push(LayerShape::new(
            CellLayer::Metal1.index(),
            Rect::from_size(Point::new(x, y), w, h),
            m3d_cells::Signal::Output(0).node_id(),
        ));
        let c1 = extract_cell(&node, &bigger, TopSiliconModel::Dielectric).total_c();
        prop_assert!(c1 >= c0, "capacitance dropped: {c0} -> {c1}");
    }

    #[test]
    fn fm_partition_is_always_balanced(seed in 0u64..60) {
        let l = lib();
        let n = random_netlist(seed, 160);
        let p = monolith3d::gmi::fm_bipartition(&n, l, 2, 0.1);
        prop_assert!((0.38..=0.62).contains(&p.balance), "balance {}", p.balance);
        prop_assert_eq!(p.assignment.len(), n.instance_count());
        // Cut count is consistent with the assignment.
        let mut cut = 0usize;
        for id in n.net_ids() {
            if Some(id) == n.clock { continue; }
            let net = n.net(id);
            let mut tiers: Vec<u8> = net
                .sinks
                .iter()
                .map(|s| p.assignment[s.inst.0 as usize])
                .collect();
            if let m3d_netlist::NetDriver::Cell { inst, .. } = net.driver {
                tiers.push(p.assignment[inst.0 as usize]);
            }
            if tiers.windows(2).any(|w| w[0] != w[1]) {
                cut += 1;
            }
        }
        prop_assert_eq!(cut, p.cut_nets);
    }

    #[test]
    fn clock_tree_covers_all_sinks_within_fanout(seed in 0u64..50, max_fanout in 4usize..32) {
        let l = lib();
        let n = random_netlist(seed, 160);
        let p = Placer::new(l).iterations(8).place(&n);
        let t = m3d_route::cts::build_clock_tree(
            &n,
            &p,
            &m3d_route::cts::CtsConfig { max_fanout },
        );
        if let Some(clock) = n.clock {
            prop_assert_eq!(t.sink_count, n.net(clock).sinks.len());
            // Leaves never exceed the fanout bound.
            for b in &t.buffers {
                if b.sinks_below <= max_fanout {
                    prop_assert!(b.sinks_below >= 1);
                }
            }
        }
    }

    #[test]
    fn repeater_insertion_preserves_consistency(seed in 0u64..200, moves in 1usize..6) {
        let l = lib();
        let mut n = random_netlist(seed, 120);
        let buf = l.smallest(CellFunction::Buf);
        for k in 0..moves {
            // Pick some driven net with at least 2 sinks.
            let candidate = n
                .net_ids()
                .filter(|&id| n.net(id).sinks.len() >= 2 && Some(id) != n.clock)
                .nth(k);
            if let Some(net) = candidate {
                let take: Vec<usize> = (0..n.net(net).sinks.len() / 2).collect();
                if !take.is_empty() {
                    n.insert_repeater(net, &take, buf, l);
                }
            }
        }
        n.check_consistency(l);
        m3d_netlist::levelize(&n, l).expect("repeaters keep the DAG acyclic");
    }
}

/// Plants one degenerate knob in an otherwise valid configuration.
fn corrupt_knob(cfg: &mut FlowConfig, knob: usize, flavor: u64) {
    let odd = flavor % 2 == 1;
    match knob {
        0 => cfg.clock_ps = Some(if odd { f64::NAN } else { -500.0 }),
        1 => cfg.utilization = Some(if odd { 1.5 } else { 0.0 }),
        2 => cfg.pin_cap_scale = if odd { -0.4 } else { f64::INFINITY },
        3 => cfg.alpha_ff = if odd { 7.0 } else { -0.1 },
        4 => cfg.place_iterations = 0,
        _ => cfg.clock_scale = if odd { f64::NEG_INFINITY } else { f64::NAN },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn degenerate_configs_yield_typed_errors_not_panics(
        knob in 0usize..6, flavor in 0u64..4,
    ) {
        let mut cfg = FlowConfig::new(NodeId::N45).scale(BenchScale::Small);
        corrupt_knob(&mut cfg, knob, flavor);
        let outcome = Flow::new(Benchmark::Aes, DesignStyle::TwoD, cfg).try_run();
        prop_assert!(
            matches!(outcome, Err(FlowError::Config(_))),
            "knob {knob}/{flavor} must be rejected pre-flight: {outcome:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    // A handful of full runs: randomized-but-sane knobs must reach
    // sign-off without panicking or erroring.
    #[test]
    fn try_run_closes_across_sane_knob_variations(
        util_pct in 55u32..85, alpha_m in 1u32..4,
    ) {
        let mut cfg = FlowConfig::new(NodeId::N45).scale(BenchScale::Small);
        cfg.utilization = Some(util_pct as f64 / 100.0);
        cfg.alpha_ff = alpha_m as f64 * 0.1;
        let r = Flow::new(Benchmark::Des, DesignStyle::TwoD, cfg)
            .try_run()
            .expect("sane configs close");
        prop_assert!(r.total_power_mw() > 0.0);
    }
}

/// Every [`FlowError`] variant renders an actionable message.
mod flow_error_display {
    use monolith3d::{ConfigError, FlowError, FlowStage};

    fn shows(e: FlowError, needles: &[&str]) {
        let text = e.to_string();
        for needle in needles {
            assert!(text.contains(needle), "{text:?} should mention {needle:?}");
        }
    }

    #[test]
    fn config() {
        shows(
            FlowError::Config(ConfigError::BadClock(-500.0)),
            &["invalid flow config", "clock_ps", "-500"],
        );
        shows(
            FlowError::Config(ConfigError::BadUtilization(1.5)),
            &["utilization", "(0, 1]", "1.5"],
        );
        shows(
            FlowError::Config(ConfigError::BadPinCapScale(0.0)),
            &["pin_cap_scale", "positive"],
        );
        shows(
            FlowError::Config(ConfigError::BadAlphaFf(7.0)),
            &["alpha_ff", "[0, 1]", "7"],
        );
        shows(
            FlowError::Config(ConfigError::ZeroPlaceIterations),
            &["place_iterations", "at least 1"],
        );
        shows(
            FlowError::Config(ConfigError::BadClockScale(f64::NAN)),
            &["clock_scale", "NaN"],
        );
    }

    #[test]
    fn library() {
        shows(
            FlowError::Library(m3d_cells::LibraryError::DegenerateGeometry {
                cell: "INV_X1".into(),
                width_nm: 0,
                height_nm: 1400,
            }),
            &["library stage", "INV_X1", "0 x 1400"],
        );
    }

    #[test]
    fn synthesis() {
        shows(
            FlowError::Synth(m3d_synth::SynthError::InvalidClock(f64::NAN)),
            &["synthesis stage", "clock", "NaN"],
        );
    }

    #[test]
    fn placement() {
        shows(
            FlowError::Place(m3d_place::PlaceError::InvalidUtilization(2.0)),
            &["placement stage", "utilization", "2"],
        );
        shows(
            FlowError::Place(m3d_place::PlaceError::EmptyNetlist),
            &["placement stage", "empty netlist"],
        );
    }

    #[test]
    fn routing() {
        shows(
            FlowError::Route(m3d_route::RouteError::MissingLayer { layer: "M1" }),
            &["routing stage", "M1"],
        );
    }

    #[test]
    fn timing() {
        shows(
            FlowError::Sta(m3d_sta::StaError::ModelCountMismatch {
                nets: 10,
                models: 3,
            }),
            &["timing analysis", "10", "3"],
        );
        shows(
            FlowError::Sta(m3d_sta::StaError::CombinationalCycle { involved: 4 }),
            &["timing analysis", "cycle", "4"],
        );
    }

    #[test]
    fn power() {
        shows(
            FlowError::Power(m3d_power::PowerError::InvalidClockPeriod(-1.0)),
            &["power analysis", "clock", "-1"],
        );
    }

    #[test]
    fn extraction() {
        shows(
            FlowError::Extract(m3d_extract::ExtractError::LayerOutOfRange {
                layer: 9,
                stack_len: 6,
            }),
            &["parasitic extraction", "9", "6"],
        );
    }

    #[test]
    fn spice() {
        shows(
            FlowError::Spice(m3d_spice::ConvergenceError { at_time_ps: 42 }),
            &["spice characterization", "converge", "42"],
        );
    }

    #[test]
    fn injected() {
        shows(
            FlowError::Injected {
                stage: FlowStage::Routing,
                detail: "planted".into(),
            },
            &["injected fault", "routing", "planted"],
        );
    }

    #[test]
    fn timing_not_closed() {
        shows(
            FlowError::TimingNotClosed {
                wns_ps: -87.3,
                clock_ps: 1200.0,
            },
            &["not closed", "-87.3", "1200"],
        );
    }
}
