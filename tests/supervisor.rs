//! Fault-injection tests for the flow supervisor: stage failures planted
//! by name against the stage graph must be absorbed by retry, escalated
//! through the degradation ladder, or reported as a typed `Failed`
//! disposition — never a panic.

use std::time::Duration;

use m3d_netlist::{BenchScale, Benchmark};
use m3d_tech::{DesignStyle, NodeId};
use monolith3d::{
    Disposition, FaultPlan, FlowConfig, FlowError, FlowStage, FlowSupervisor, Relaxation,
    StageDeadlines, SupervisorPolicy,
};

fn cfg() -> FlowConfig {
    FlowConfig::new(NodeId::N45).scale(BenchScale::Small)
}

fn supervisor() -> FlowSupervisor {
    FlowSupervisor::new(Benchmark::Aes, DesignStyle::TwoD, cfg())
}

#[test]
fn transient_fault_is_retried_and_the_run_still_closes() {
    let report = supervisor()
        .with_faults(FaultPlan::new().fail_stage("postroute", 1))
        .run();

    assert!(report.closed(), "disposition: {:?}", report.disposition);
    assert_eq!(
        report.disposition,
        Disposition::Closed,
        "retry is not degradation"
    );
    let result = report.result.as_ref().expect("closed runs carry a result");
    assert!(result.total_power_mw() > 0.0);

    // The injected failure and the retry are both on the record...
    let post: Vec<_> = report
        .attempts
        .iter()
        .filter(|a| a.stage == FlowStage::PostRouteOpt)
        .collect();
    assert!(
        matches!(post[0].error, Some(FlowError::Injected { .. })),
        "first post-route attempt carries the injected error: {:?}",
        post[0]
    );
    assert_eq!(post[1].attempt, 2);
    assert!(post[1].error.is_none(), "second attempt succeeds");

    // ...while the stages before the fault ran exactly once: the retry
    // resumed from the checkpoint instead of restarting the flow.
    assert_eq!(report.stage_attempts("synth"), 1);
}

#[test]
fn persistent_fault_without_degradation_fails_naming_the_stage() {
    let report = supervisor()
        .policy(SupervisorPolicy {
            allow_degradation: false,
            ..SupervisorPolicy::default()
        })
        .with_faults(FaultPlan::new().always_stage("route"))
        .run();

    assert!(!report.closed());
    match &report.disposition {
        Disposition::Failed { stage, error } => {
            assert_eq!(*stage, FlowStage::Routing);
            assert!(matches!(error, FlowError::Injected { .. }), "got {error}");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    // The retry budget was spent before giving up.
    assert_eq!(
        report.stage_attempts("route"),
        SupervisorPolicy::default().max_stage_attempts
    );
    assert!(report.result.is_none());
}

#[test]
fn repeated_faults_walk_the_degradation_ladder_to_a_degraded_close() {
    // One attempt per stage, three planted post-route failures: rung 0
    // fails as configured, the ladder then adds passes (resuming from the
    // routing checkpoint), relaxes utilization, and finally backs the
    // clock off before the fourth invocation closes.
    let baseline = supervisor().run();
    assert!(
        baseline.closed(),
        "baseline must close: {:?}",
        baseline.disposition
    );

    let report = supervisor()
        .policy(SupervisorPolicy {
            max_stage_attempts: 1,
            ..SupervisorPolicy::default()
        })
        .with_faults(
            FaultPlan::new()
                .fail_stage("postroute", 1)
                .fail_stage("postroute", 2)
                .fail_stage("postroute", 3),
        )
        .run();

    assert!(report.closed(), "disposition: {:?}", report.disposition);
    let relaxations = match &report.disposition {
        Disposition::ClosedDegraded { relaxations } => relaxations,
        other => panic!("expected ClosedDegraded, got {other:?}"),
    };
    assert!(
        matches!(relaxations[0], Relaxation::ExtraOptPasses { .. }),
        "first rung adds passes: {relaxations:?}"
    );
    assert!(
        relaxations
            .iter()
            .any(|r| matches!(r, Relaxation::RelaxedUtilization { .. })),
        "ladder reached the utilization rung: {relaxations:?}"
    );
    assert!(
        relaxations
            .iter()
            .any(|r| matches!(r, Relaxation::ClockBackoff { .. })),
        "ladder reached the clock rung: {relaxations:?}"
    );
    // The relaxed knobs show up in the effective operating point.
    assert!(report.utilization < baseline.utilization);
    assert!(report.clock_ps > baseline.clock_ps);
    assert!(report.degraded());
    assert!(report.result.is_some());
}

#[test]
fn extra_passes_rung_resumes_from_the_routing_checkpoint() {
    // With exactly one planted post-route failure and no retry budget,
    // rung 1 must re-enter at post-route: synthesis through routing run
    // once in total.
    let report = supervisor()
        .policy(SupervisorPolicy {
            max_stage_attempts: 1,
            ..SupervisorPolicy::default()
        })
        .with_faults(FaultPlan::new().fail_stage("postroute", 1))
        .run();

    assert!(report.closed(), "disposition: {:?}", report.disposition);
    assert_eq!(report.stage_attempts("synth"), 1);
    let routing_rungs: Vec<u32> = report
        .attempts
        .iter()
        .filter(|a| a.stage == FlowStage::Routing)
        .map(|a| a.rung)
        .collect();
    assert!(
        routing_rungs.iter().all(|&r| r == 0),
        "routing never re-ran on a later rung: {routing_rungs:?}"
    );
    let rung1_post = report
        .attempts
        .iter()
        .find(|a| a.stage == FlowStage::PostRouteOpt && a.rung == 1)
        .expect("rung 1 re-attempted post-route optimization");
    assert!(rung1_post.error.is_none());
}

#[test]
fn structural_errors_fail_fast_without_touching_the_ladder() {
    let mut config = cfg();
    config.clock_ps = Some(f64::NAN);
    let report = FlowSupervisor::new(Benchmark::Aes, DesignStyle::TwoD, config).run();

    match &report.disposition {
        Disposition::Failed { stage, error } => {
            assert_eq!(*stage, FlowStage::Library);
            assert!(matches!(error, FlowError::Config(_)), "got {error}");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    // Nothing past preparation ever ran.
    assert!(report
        .attempts
        .iter()
        .all(|a| a.stage == FlowStage::Library));
}

#[test]
fn persistent_fault_exhausts_the_ladder_and_reports_the_final_error() {
    let report = supervisor()
        .policy(SupervisorPolicy {
            max_stage_attempts: 1,
            ..SupervisorPolicy::default()
        })
        .with_faults(FaultPlan::new().always_stage("signoff"))
        .run();

    assert!(!report.closed());
    match &report.disposition {
        Disposition::Failed { stage, error } => {
            assert_eq!(*stage, FlowStage::SignOff);
            assert!(matches!(error, FlowError::Injected { .. }), "got {error}");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    // All four rungs (as configured + three relaxations) were tried.
    let signoff_rungs: Vec<u32> = report
        .attempts
        .iter()
        .filter(|a| a.stage == FlowStage::SignOff)
        .map(|a| a.rung)
        .collect();
    assert_eq!(signoff_rungs, vec![0, 1, 2, 3]);
}

/// The rung's identity, for pinning the ladder order by name.
fn relaxation_kind(r: &Relaxation) -> &'static str {
    match r {
        Relaxation::ExtraOptPasses { .. } => "extra-passes",
        Relaxation::RelaxedUtilization { .. } => "relaxed-utilization",
        Relaxation::ClockBackoff { .. } => "clock-backoff",
    }
}

#[test]
fn degradation_ladder_order_is_pinned() {
    // One planted post-route failure per rung escalation, no retry
    // budget: N failures climb exactly N rungs, in exactly this order.
    let table: &[(u32, &[&str])] = &[
        (0, &[]),
        (1, &["extra-passes"]),
        (2, &["extra-passes", "relaxed-utilization"]),
        (3, &["extra-passes", "relaxed-utilization", "clock-backoff"]),
    ];
    for (failures, expected) in table {
        let mut plan = FaultPlan::new();
        for invocation in 1..=*failures {
            plan = plan.fail_stage("postroute", invocation);
        }
        let report = supervisor()
            .policy(SupervisorPolicy {
                max_stage_attempts: 1,
                ..SupervisorPolicy::default()
            })
            .with_faults(plan)
            .run();

        assert!(
            report.closed(),
            "{failures} failures must still close: {:?}",
            report.disposition
        );
        let recorded: Vec<&str> = match &report.disposition {
            Disposition::Closed => Vec::new(),
            Disposition::ClosedDegraded { relaxations } => {
                relaxations.iter().map(relaxation_kind).collect()
            }
            other => panic!("{failures} failures: unexpected {other:?}"),
        };
        assert_eq!(
            recorded, *expected,
            "{failures} failures pin this exact relaxation order"
        );
    }
}

#[test]
fn planted_panic_is_contained_and_retried() {
    let report = supervisor()
        .with_faults(FaultPlan::new().panic_stage("postroute", 1))
        .run();

    assert_eq!(report.disposition, Disposition::Closed);
    let post: Vec<_> = report
        .attempts
        .iter()
        .filter(|a| a.stage == FlowStage::PostRouteOpt)
        .collect();
    assert!(
        matches!(post[0].error, Some(FlowError::StagePanicked { .. })),
        "the unwound attempt is on the record: {:?}",
        post[0]
    );
    assert!(post[1].error.is_none(), "the retry succeeds");
}

#[test]
fn blown_deadline_is_reported_and_retried() {
    // Squeeze placement's budget to 40 ms and plant a 300 ms hang in its
    // first invocation: the watchdog must cut it off, record a typed
    // DeadlineExceeded, and the retry (no hang) must close the run.
    let report = supervisor()
        .policy(SupervisorPolicy {
            deadlines: Some(StageDeadlines::default().with_stage("place", 40)),
            ..SupervisorPolicy::default()
        })
        .with_faults(FaultPlan::new().delay_stage("place", 1, Duration::from_millis(300)))
        .run();

    assert_eq!(report.disposition, Disposition::Closed);
    let place: Vec<_> = report
        .attempts
        .iter()
        .filter(|a| a.stage == FlowStage::Placement)
        .collect();
    match &place[0].error {
        Some(FlowError::DeadlineExceeded { stage, budget_ms }) => {
            assert_eq!(*stage, FlowStage::Placement);
            assert_eq!(*budget_ms, 40);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(place[1].error.is_none(), "the retry succeeds");
}
